package serve

import (
	"testing"
	"time"
)

// TestTunerWidth covers the width policy: serial first probe, serial for
// sub-floor layers, cost-proportional width for expensive layers, and the
// maxWidth clamp.
func TestTunerWidth(t *testing.T) {
	var tu searchTuner
	if w := tu.width("a|l", 256, 8); w != 1 {
		t.Fatalf("unknown layer width = %d, want 1 (serial probe)", w)
	}
	// Cheap layer: 1µs/candidate is below the fan-out floor.
	tu.observe("a|l", 100, 1, 100*time.Microsecond)
	if w := tu.width("a|l", 256, 8); w != 1 {
		t.Fatalf("sub-floor layer width = %d, want 1", w)
	}
	// Expensive layer: 100µs/candidate over 256 candidates is ~25ms of
	// work; the tuner should ask for the full width.
	tu.observe("a|heavy", 100, 1, 10*time.Millisecond)
	if w := tu.width("a|heavy", 256, 8); w != 8 {
		t.Fatalf("heavy layer width = %d, want 8 (clamped)", w)
	}
	// Small budget on the same layer: proportionally narrower.
	if w := tu.width("a|heavy", 8, 8); w >= 8 {
		t.Fatalf("8-candidate search got width %d; expected narrower than the clamp", w)
	}
	if w := tu.width("a|heavy", 256, 0); w != 1 {
		t.Fatalf("maxWidth 0 must clamp to 1, got %d", w)
	}
}

// TestTunerObserveNormalizesWidth pins the anti-oscillation rule: a
// search that ran 4-wide reports 4x its wall time as work, so the EWMA
// stays the per-candidate cost and the chosen width is stable instead of
// halving after every wide search.
func TestTunerObserveNormalizesWidth(t *testing.T) {
	var serialTu, wideTu searchTuner
	// Same underlying work (100 candidates x 100µs): serially it takes
	// 10ms, 4-wide it takes 2.5ms of wall time.
	serialTu.observe("k", 100, 1, 10*time.Millisecond)
	wideTu.observe("k", 100, 4, 2500*time.Microsecond)
	ws := serialTu.width("k", 256, 16)
	ww := wideTu.width("k", 256, 16)
	if ws != ww {
		t.Fatalf("width after serial observation %d != after wide observation %d", ws, ww)
	}
}

// TestAdaptiveServerMatchesStaticAnswers checks the default server (zero
// options = adaptive width) returns answers identical to an explicitly
// serial server, while its healthz budget section reports the adaptive
// counters.
func TestAdaptiveServerMatchesStaticAnswers(t *testing.T) {
	adaptive := NewServer(BatchOptions{})
	serial := NewServer(BatchOptions{SearchWorkers: -1})
	if !adaptive.SearchStats().Adaptive {
		t.Fatal("zero-value server did not report adaptive mode")
	}
	if serial.SearchStats().Adaptive {
		t.Fatal("SearchWorkers < 0 still reported adaptive mode")
	}
	req := Request{Macro: "base", Network: "toy", MaxMappings: 16, Seed: 5}
	want, err := serial.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	// Twice, so the second pass runs with a measured (tuned) width.
	for pass := 0; pass < 2; pass++ {
		got, err := adaptive.Evaluate(req)
		if err != nil {
			t.Fatal(err)
		}
		if got.EnergyJ != want.EnergyJ || got.MappingsEvaluated != want.MappingsEvaluated {
			t.Fatalf("pass %d: adaptive diverged: %+v vs %+v", pass, got, want)
		}
	}
	st := adaptive.SearchStats()
	if st.AdaptivePlans == 0 || st.TunedLayers == 0 {
		t.Fatalf("adaptive counters not advancing: %+v", st)
	}
	if st.Available != st.Capacity {
		t.Fatalf("budget leaked under adaptive mode: %d of %d", st.Available, st.Capacity)
	}
}
