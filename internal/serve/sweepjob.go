package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"repro/internal/serve/jobs"
)

// sweepRun is the durable state of one sweep job across dispatches: which
// grid items are finished (and their results), and which of those have
// already been reported into the job's progress. A batch job that yields
// to interactive work is requeued and later re-dispatched with the SAME
// sweepRun, so the resumed run evaluates only the unfinished items; the
// same structure seeds WAL replay from on-disk checkpoints after a
// restart.
type sweepRun struct {
	srv  *Server
	id   string
	reqs []Request
	opts SweepJobOptions
	// ckpt: persist each item completion as a checkpoint record so a
	// crash-replay also skips finished items.
	ckpt bool

	mu      sync.Mutex
	done    []bool
	results []*Result
	// reported tracks which finished items this job has already streamed
	// into its progress. An in-process resume keeps the job object (and
	// its completed count), so only items restored from disk into a FRESH
	// job — WAL replay — are re-reported.
	reported []bool
}

func (s *Server) newSweepRun(id string, reqs []Request, opts SweepJobOptions, ckpt bool) *sweepRun {
	return &sweepRun{
		srv:      s,
		id:       id,
		reqs:     reqs,
		opts:     opts,
		ckpt:     ckpt,
		done:     make([]bool, len(reqs)),
		results:  make([]*Result, len(reqs)),
		reported: make([]bool, len(reqs)),
	}
}

// restore seeds one finished item from an on-disk checkpoint (boot-time
// WAL replay, before the job is submitted). Out-of-range indices are
// ignored — a stale checkpoint must not panic the boot scan.
func (r *sweepRun) restore(i int, res *Result) {
	if i < 0 || i >= len(r.reqs) || res == nil {
		return
	}
	r.mu.Lock()
	r.done[i] = true
	r.results[i] = res
	r.mu.Unlock()
}

// resultErr converts a per-item failure string back into the error the
// progress stream expects.
func resultErr(res *Result) error {
	if res != nil && res.Err != "" {
		return errors.New(res.Err)
	}
	return nil
}

// fn builds the job body. Each dispatch first reports any finished items
// the job object has not seen (restored checkpoints on replay), then
// fans out only the unfinished remainder, yielding at item boundaries
// while the queue says interactive work is waiting.
func (r *sweepRun) fn() jobs.Fn {
	return func(ctx context.Context, report jobs.Report) (any, error) {
		if r.opts.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.opts.Timeout)
			defer cancel()
		}
		if r.opts.Tenant != "" {
			// The job context starts fresh (it outlives the submitting HTTP
			// request); re-attach the tenant so per-item trace spans and the
			// slow log attribute the work.
			ctx = context.WithValue(ctx, tenantKey{}, r.opts.Tenant)
		}
		r.mu.Lock()
		var restored, pending []int
		for i := range r.reqs {
			switch {
			case !r.done[i]:
				pending = append(pending, i)
			case !r.reported[i]:
				r.reported[i] = true
				restored = append(restored, i)
			}
		}
		r.mu.Unlock()
		for _, i := range restored {
			report(i, r.results[i], resultErr(r.results[i]))
		}
		if len(pending) > 0 {
			sub := make([]Request, len(pending))
			for k, i := range pending {
				sub[k] = r.reqs[i]
			}
			_, preempted, err := r.srv.sweepCtx(ctx, sub, r.opts.Workers,
				func(k int, res *Result) {
					i := pending[k]
					r.mu.Lock()
					r.done[i] = true
					r.results[i] = res
					r.reported[i] = true
					r.mu.Unlock()
					report(i, res, resultErr(res))
					if r.ckpt {
						r.srv.writeCheckpoint(r.id, i, res)
					}
				},
				func() bool { return r.srv.jobs.Preempting(r.id) })
			if err != nil {
				return nil, err
			}
			if preempted {
				return nil, jobs.ErrPreempted
			}
		}
		r.mu.Lock()
		full := make([]*Result, len(r.results))
		copy(full, r.results)
		r.mu.Unlock()
		return SweepTable(full).String(), nil
	}
}

// checkpointPayload serializes one finished item for its checkpoint
// record (the JSON api.EvalResult).
func checkpointPayload(res *Result) ([]byte, error) { return json.Marshal(res) }

// decodeCheckpointPayload is the inverse, used by boot-time WAL replay.
func decodeCheckpointPayload(data []byte) (*Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, err
	}
	return &res, nil
}
