package serve

import (
	"context"
	"testing"
	"time"
)

// TestAcquireWaitBlocksForFirstToken: with the budget drained, blocking
// mode parks for the first token and picks it up when released, without
// waiting for the full complement.
func TestAcquireWaitBlocksForFirstToken(t *testing.T) {
	b := newTokenBudget(2)
	if got := b.tryAcquire(2); got != 2 {
		t.Fatalf("drain got %d tokens", got)
	}
	done := make(chan int, 1)
	go func() { done <- b.acquireWait(context.Background(), 2, 5*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	b.release(1)
	if got := <-done; got != 1 {
		t.Fatalf("acquireWait got %d tokens, want the 1 released", got)
	}
	if n := b.blockedAcquires(); n != 1 {
		t.Fatalf("blockedAcquires = %d, want 1", n)
	}
	b.release(1)
}

// TestAcquireWaitTimesOut: an empty budget that stays empty bounds the
// wait and returns zero tokens.
func TestAcquireWaitTimesOut(t *testing.T) {
	b := newTokenBudget(1)
	b.tryAcquire(1)
	start := time.Now()
	if got := b.acquireWait(context.Background(), 3, 30*time.Millisecond); got != 0 {
		t.Fatalf("got %d tokens from an empty budget", got)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("returned after %v, want the ~30ms wait", elapsed)
	}
}

// TestAcquireWaitNonBlockingPaths: a free token or a non-positive wait
// must behave exactly like tryAcquire (no blocking, no counter).
func TestAcquireWaitNonBlockingPaths(t *testing.T) {
	b := newTokenBudget(2)
	if got := b.acquireWait(context.Background(), 2, time.Second); got != 2 {
		t.Fatalf("free budget: got %d, want 2", got)
	}
	if got := b.acquireWait(context.Background(), 1, 0); got != 0 {
		t.Fatalf("wait=0 on empty budget: got %d, want 0", got)
	}
	if n := b.blockedAcquires(); n != 0 {
		t.Fatalf("blockedAcquires = %d, want 0 (no blocking path taken)", n)
	}
}

// TestAcquireWaitCancelled: context cancellation ends the park early.
func TestAcquireWaitCancelled(t *testing.T) {
	b := newTokenBudget(1)
	b.tryAcquire(1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if got := b.acquireWait(ctx, 1, 10*time.Second); got != 0 {
		t.Fatalf("cancelled wait returned %d tokens", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not end the wait (took %v)", elapsed)
	}
}

// TestBlockingWaitSizing pins the deadline-headroom policy: no deadline
// gets the cap, a near deadline disables blocking, and mid-range
// headroom scales the window down.
func TestBlockingWaitSizing(t *testing.T) {
	if w := blockingWait(context.Background()); w != budgetWaitCap {
		t.Fatalf("no deadline: wait %v, want cap %v", w, budgetWaitCap)
	}
	near, cancel := context.WithTimeout(context.Background(), budgetHeadroomMin/2)
	defer cancel()
	if w := blockingWait(near); w != 0 {
		t.Fatalf("near deadline: wait %v, want 0", w)
	}
	far, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	if w := blockingWait(far); w != budgetWaitCap {
		t.Fatalf("far deadline: wait %v, want cap %v", w, budgetWaitCap)
	}
	mid, cancel3 := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel3()
	if w := blockingWait(mid); w <= 0 || w > budgetWaitCap {
		t.Fatalf("3s headroom: wait %v, want ~headroom/16 within (0, %v]", w, budgetWaitCap)
	}
}
