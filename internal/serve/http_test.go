package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/workload"
)

func testClient(t *testing.T, srv *Server) (*httptest.Server, func(method, path, body string) (int, map[string]any)) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	do := func(method, path, body string) (int, map[string]any) {
		t.Helper()
		var rdr *bytes.Reader
		if body == "" {
			rdr = bytes.NewReader(nil)
		} else {
			rdr = bytes.NewReader([]byte(body))
		}
		req, err := http.NewRequest(method, ts.URL+path, rdr)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
		return resp.StatusCode, out
	}
	return ts, do
}

func TestHealthzAndEvaluateRoundTrip(t *testing.T) {
	srv := NewServer(BatchOptions{MaxMappings: 2})
	_, do := testClient(t, srv)

	status, health := do("GET", "/healthz", "")
	if status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", status, health)
	}
	if _, ok := health["cache"].(map[string]any); !ok {
		t.Fatalf("healthz must expose cache stats: %v", health)
	}

	status, res := do("POST", "/v1/evaluate",
		`{"macro": "macro-b", "network": "toy", "max_mappings": 2, "seed": 1}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate: %d %v", status, res)
	}
	if e, _ := res["energy_j"].(float64); e <= 0 {
		t.Fatalf("evaluate energy: %v", res)
	}
	if res["arch"] == "" || res["network"] != "toy" {
		t.Fatalf("evaluate labels: %v", res)
	}

	// The cache must have warmed: a second identical call hits.
	do("POST", "/v1/evaluate", `{"macro": "macro-b", "network": "toy", "max_mappings": 2, "seed": 1}`)
	_, health = do("GET", "/healthz", "")
	cache := health["cache"].(map[string]any)
	if hits, _ := cache["hits"].(float64); hits == 0 {
		t.Fatalf("repeated evaluate must hit the cache: %v", cache)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := NewServer(BatchOptions{})
	_, do := testClient(t, srv)

	status, out := do("POST", "/v1/evaluate", `{"macro": "no-such", "network": "toy"}`)
	if status != http.StatusBadRequest || out["error"] == "" {
		t.Fatalf("bad macro: %d %v", status, out)
	}
	status, out = do("POST", "/v1/evaluate", `{"unknown_field": 1}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %v", status, out)
	}
	status, _ = do("POST", "/v1/sweep", `{}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty sweep: %d", status)
	}
}

func TestSweepEndpointGrid(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 4})
	_, do := testClient(t, srv)

	status, out := do("POST", "/v1/sweep",
		`{"macros": ["base", "macro-b"], "networks": ["toy"], "max_mappings": 2}`)
	if status != http.StatusOK {
		t.Fatalf("sweep: %d %v", status, out)
	}
	results, ok := out["results"].([]any)
	if !ok || len(results) != 2 {
		t.Fatalf("sweep results: %v", out["results"])
	}
	table, _ := out["table"].(string)
	if !strings.Contains(table, "toy") {
		t.Fatalf("sweep table:\n%s", table)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	srv := NewServer(BatchOptions{})
	_, do := testClient(t, srv)

	status, out := do("GET", "/v1/macros", "")
	if status != http.StatusOK {
		t.Fatalf("macros: %d", status)
	}
	if ms, _ := out["macros"].([]any); len(ms) == 0 {
		t.Fatalf("macros empty: %v", out)
	}

	status, out = do("GET", "/v1/networks", "")
	if status != http.StatusOK {
		t.Fatalf("networks: %d", status)
	}
	nets, _ := out["networks"].([]any)
	if len(nets) != len(workload.Names()) {
		t.Fatalf("networks: %v", out)
	}
}

func TestExperimentEndpoints(t *testing.T) {
	srv := NewServer(BatchOptions{})
	_, do := testClient(t, srv)

	// Unwired: explicit 501, not a crash.
	status, _ := do("GET", "/v1/experiments", "")
	if status != http.StatusNotImplemented {
		t.Fatalf("unwired list: %d", status)
	}

	srv.ExperimentNames = func() []string { return []string{"fig2a"} }
	srv.RunExperiment = func(name string, fast bool, mm int, seed int64) ([]*report.Table, error) {
		if name != "fig2a" {
			return nil, fmt.Errorf("unknown %q", name)
		}
		tbl := report.NewTable("stub", "col")
		tbl.AddRow("v")
		return []*report.Table{tbl}, nil
	}
	status, out := do("GET", "/v1/experiments", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d %v", status, out)
	}
	status, out = do("POST", "/v1/experiments", `{"name": "fig2a", "fast": true}`)
	if status != http.StatusOK {
		t.Fatalf("run: %d %v", status, out)
	}
	if tables, _ := out["tables"].([]any); len(tables) != 1 {
		t.Fatalf("run tables: %v", out)
	}
	status, _ = do("POST", "/v1/experiments", `{"name": "nope"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad experiment: %d", status)
	}
}
