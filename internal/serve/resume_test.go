package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/serve/jobs"
)

// The checkpoint-resume property: kill a sweep job at an item boundary,
// restart over the same jobs dir, and the replay (a) re-evaluates ONLY
// the unfinished grid items — measured by the restarted server's
// lifetime mappings-evaluated counter — and (b) merges checkpointed and
// fresh results into a table bit-identical to an uninterrupted run.

// resumeReqs is the property suite's work list: five deterministic
// (seeded) items, heavy enough that the test can reliably interrupt
// between boundaries.
func resumeReqs() []Request {
	return []Request{
		{Tag: "r0", Macro: "base", Network: "mobilenetv3-large", MaxMappings: 4, Seed: 1},
		{Tag: "r1", Macro: "macro-b", Network: "mobilenetv3-large", MaxMappings: 4, Seed: 2},
		{Tag: "r2", Macro: "base", Network: "resnet18", MaxMappings: 4, Seed: 3},
		{Tag: "r3", Macro: "macro-b", Network: "resnet18", MaxMappings: 4, Seed: 4},
		{Tag: "r4", Macro: "base", Network: "toy", MaxMappings: 4, Seed: 5},
	}
}

func TestCheckpointResumeOnlyUnfinished(t *testing.T) {
	reqs := resumeReqs()

	// Uninterrupted reference run: per-item mapping counts and the
	// merged table every interrupted run must reproduce exactly.
	ref := NewServer(BatchOptions{Workers: 1})
	refResults, err := ref.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	refTotal := ref.SearchStats().MappingsEvaluated
	refTable := SweepTable(refResults).String()
	ref.Close()
	if refTotal <= 0 {
		t.Fatalf("reference run evaluated no mappings")
	}

	// Kill after k completed items (k varies the boundary; the write
	// queue may checkpoint a few more before Close lands).
	for _, k := range []int{1, 3} {
		t.Run(string(rune('0'+k))+"-items-done", func(t *testing.T) {
			dir := t.TempDir()
			first := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
			snap, err := first.SubmitSweep(reqs, 1)
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(120 * time.Second)
			for {
				cur, ok := first.Job(snap.ID)
				if !ok {
					t.Fatalf("job %s vanished", snap.ID)
				}
				if cur.Completed >= k {
					break
				}
				if cur.Status != jobs.StatusQueued && cur.Status != jobs.StatusRunning {
					t.Fatalf("job went terminal before the kill point: %+v", cur)
				}
				if time.Now().After(deadline) {
					t.Fatalf("job never reached %d items: %+v", k, cur)
				}
				time.Sleep(2 * time.Millisecond)
			}
			first.Close() // "kill": WAL + checkpoints survive shutdown

			second := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
			defer second.Close()
			ps := second.PersistStats()
			if ps.Warm.Replayed != 1 {
				t.Fatalf("warm stats = %+v, want 1 replayed job", ps.Warm)
			}
			// Every item reported before the kill was checkpointed and
			// restored; with one worker items finish in feed order, so
			// the restored set is a prefix.
			c := ps.Warm.Checkpoints
			if c < k || c >= len(reqs) {
				t.Fatalf("restored %d checkpoints, want in [%d, %d)", c, k, len(reqs))
			}

			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()
			final, err := second.WaitJob(ctx, snap.ID)
			if err != nil {
				t.Fatal(err)
			}
			if final.Status != jobs.StatusSucceeded || final.Completed != len(reqs) {
				t.Fatalf("replayed job = %+v", final)
			}

			// (a) Only the unfinished suffix was re-evaluated: the new
			// process's mapping counter equals the reference total minus
			// the checkpointed prefix's contribution, mapping for mapping.
			var restored int64
			for _, r := range refResults[:c] {
				restored += r.MappingsEvaluated
			}
			if got, want := second.SearchStats().MappingsEvaluated, refTotal-restored; got != want {
				t.Fatalf("resumed run evaluated %d mappings, want %d (reference %d - %d restored)",
					got, want, refTotal, restored)
			}

			// (b) The merged result is bit-identical to the uninterrupted
			// run's table.
			table, ok := final.Result.(string)
			if !ok {
				t.Fatalf("replayed job result is %T, want rendered table", final.Result)
			}
			if table != refTable {
				t.Fatalf("merged table diverged from uninterrupted run:\n got:\n%s\nwant:\n%s", table, refTable)
			}
		})
	}
}

// TestCheckpointsRetiredWithJob: once the resumed job finishes, its
// checkpoint records are deleted — a further restart restores the
// terminal snapshot without replaying or re-restoring anything.
func TestCheckpointsRetiredWithJob(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	snap, err := first.SubmitSweep(resumeReqs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		cur, _ := first.Job(snap.ID)
		if cur.Completed >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	first.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	if ps := second.PersistStats(); ps.Warm.Checkpoints < 1 {
		t.Fatalf("warm stats = %+v, want restored checkpoints", ps.Warm)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := second.WaitJob(ctx, snap.ID); err != nil {
		t.Fatal(err)
	}
	second.Close()

	third := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	defer third.Close()
	ps := third.PersistStats()
	if ps.Warm.Jobs != 1 || ps.Warm.Replayed != 0 || ps.Warm.Checkpoints != 0 || ps.Warm.Skipped != 0 {
		t.Fatalf("after completion the WAL and checkpoints must be retired: %+v", ps.Warm)
	}
	got, ok := third.Job(snap.ID)
	if !ok || got.Status != jobs.StatusSucceeded || got.Completed != len(resumeReqs()) {
		t.Fatalf("restored snapshot = %+v", got)
	}
}
