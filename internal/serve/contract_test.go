package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/serve/jobs"
)

// jsonDecode decodes a raw response body (for tests that need headers
// and body together, which the do() helper hides).
func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// These tests pin the v1 contract's error surface: every failure path —
// including the ones net/http would answer itself — speaks the
// api.Error envelope as application/json with a stable code.

// envelope pulls the code/message fields out of a decoded error body.
func envelope(t *testing.T, out map[string]any) (code, message string) {
	t.Helper()
	code, _ = out["code"].(string)
	message, _ = out["message"].(string)
	if code == "" {
		t.Fatalf("response is not an error envelope: %v", out)
	}
	return code, message
}

func TestErrorEnvelopeMalformedAndUnknown(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	_, do := testClient(t, srv)

	// Malformed JSON.
	status, out := do("POST", "/v1/evaluate", `{"macro": `)
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("malformed body: %d %v", status, out)
	}
	// Unknown field (typo protection).
	status, out = do("POST", "/v1/evaluate", `{"unknown_field": 1}`)
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("unknown field: %d %v", status, out)
	}
	// Semantically invalid request.
	status, out = do("POST", "/v1/evaluate", `{"macro": "no-such", "network": "toy"}`)
	if code, msg := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" || !strings.Contains(msg, "no-such") {
		t.Fatalf("bad macro: %d %v", status, out)
	}
	// Unknown priority class.
	status, out = do("POST", "/v1/jobs", `{"macros": ["base"], "networks": ["toy"], "priority": "urgent"}`)
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("bad priority: %d %v", status, out)
	}
	// Unknown job ID.
	status, out = do("GET", "/v1/jobs/job-999999", "")
	if code, _ := envelope(t, out); status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("unknown job: %d %v", status, out)
	}
	// Bad query parameters.
	status, out = do("GET", "/v1/jobs?status=bogus", "")
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("bad status filter: %d %v", status, out)
	}
	status, out = do("GET", "/v1/jobs?limit=-3", "")
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("bad limit: %d %v", status, out)
	}
}

// TestErrorEnvelopeRoutes404And405: the wrapped mux never answers
// net/http's plain text.
func TestErrorEnvelopeRoutes404And405(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	ts, _ := testClient(t, srv)

	resp, err := ts.Client().Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("404 Content-Type %q", ct)
	}
	var out map[string]any
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatalf("404 body is not JSON: %v", err)
	}
	if code, msg := envelope(t, out); code != "not_found" || !strings.Contains(msg, "/no/such/route") {
		t.Fatalf("404 envelope: %v", out)
	}

	// Wrong method on a known route.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs", nil)
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp2.StatusCode)
	}
	if ct := resp2.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("405 Content-Type %q", ct)
	}
	var out2 map[string]any
	if err := jsonDecode(resp2, &out2); err != nil {
		t.Fatalf("405 body is not JSON: %v", err)
	}
	if code, _ := envelope(t, out2); code != "method_not_allowed" {
		t.Fatalf("405 envelope: %v", out2)
	}
	if details, _ := out2["details"].(map[string]any); details["allow"] == "" {
		t.Fatalf("405 must name the allowed methods: %v", out2)
	}
}

// TestErrorEnvelopeOversizedBody: the configurable body bound answers
// 413 with the envelope instead of decoding unbounded input.
func TestErrorEnvelopeOversizedBody(t *testing.T) {
	srv := NewServer(BatchOptions{MaxBodyBytes: 128})
	defer srv.Close()
	_, do := testClient(t, srv)

	big := fmt.Sprintf(`{"macro": "base", "network": "toy", "tag": %q}`, strings.Repeat("x", 4096))
	status, out := do("POST", "/v1/evaluate", big)
	code, msg := envelope(t, out)
	if status != http.StatusRequestEntityTooLarge || code != "invalid_request" {
		t.Fatalf("oversized: %d %v", status, out)
	}
	if !strings.Contains(msg, "128") {
		t.Fatalf("message must name the bound: %q", msg)
	}
	if details, _ := out["details"].(map[string]any); details["max_bytes"] != "128" {
		t.Fatalf("details: %v", out)
	}
	// Under the bound the same endpoint still works.
	if status, out := do("POST", "/v1/evaluate", `{"macro": "base", "network": "toy"}`); status != http.StatusOK {
		t.Fatalf("small body: %d %v", status, out)
	}
}

// TestErrorEnvelopeQueueFull429: the backpressure response carries the
// hint twice — Retry-After header for generic HTTP clients,
// retry_after_sec in the envelope for contract clients.
func TestErrorEnvelopeQueueFull429(t *testing.T) {
	srv := NewServer(BatchOptions{
		MaxRunningJobs: 1, MaxQueuedJobs: 1, JobRetryAfter: 3 * time.Second,
	})
	defer srv.Close()
	ts, _ := testClient(t, srv)

	runningID, release := blockingJob(t, srv)
	defer release()
	waitRunning(t, srv, runningID)
	_, releaseQueued := blockingJob(t, srv)
	defer releaseQueued()

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}
	var out map[string]any
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	if code, _ := envelope(t, out); code != "queue_full" {
		t.Fatalf("429 envelope: %v", out)
	}
	if sec, _ := out["retry_after_sec"].(float64); sec != 3 {
		t.Fatalf("retry_after_sec: %v", out)
	}
}

// TestErrorEnvelopeShutdownAndPanic: a draining server answers
// shutting_down; a handler panic becomes a 500 internal envelope, not a
// severed connection.
func TestErrorEnvelopeShutdownAndPanic(t *testing.T) {
	srv := NewServer(BatchOptions{})
	_, do := testClient(t, srv)
	srv.Close()
	status, out := do("POST", "/v1/jobs", `{"macros": ["base"], "networks": ["toy"]}`)
	if code, _ := envelope(t, out); status != http.StatusServiceUnavailable || code != "shutting_down" {
		t.Fatalf("submit after close: %d %v", status, out)
	}

	srv2 := NewServer(BatchOptions{})
	defer srv2.Close()
	srv2.RunExperiment = func(name string, fast bool, mm int, seed int64) ([]*report.Table, error) {
		panic("experiment runner exploded")
	}
	_, do2 := testClient(t, srv2)
	status, out = do2("POST", "/v1/experiments", `{"name": "fig2a"}`)
	if code, msg := envelope(t, out); status != http.StatusInternalServerError || code != "internal" || strings.Contains(msg, "exploded") {
		// The panic value must NOT leak to the client.
		t.Fatalf("panic recovery: %d %v", status, out)
	}
}

// TestJobListPaginationHTTP drives ?status/?limit/?cursor end to end.
func TestJobListPaginationHTTP(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, AsyncThreshold: -1})
	defer srv.Close()
	_, do := testClient(t, srv)

	for i := 0; i < 3; i++ {
		status, out := do("POST", "/v1/jobs", `{"macros": ["base"], "networks": ["toy"], "max_mappings": 1, "layers": 1}`)
		id := acceptedJobID(t, status, out)
		pollJob(t, do, id)
	}
	status, out := do("GET", "/v1/jobs?limit=2", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d %v", status, out)
	}
	page, _ := out["jobs"].([]any)
	if len(page) != 2 {
		t.Fatalf("page size %d: %v", len(page), out)
	}
	next, _ := out["next_cursor"].(string)
	if next != "job-000002" {
		t.Fatalf("next_cursor %q", next)
	}
	status, out = do("GET", "/v1/jobs?limit=2&cursor="+next, "")
	if status != http.StatusOK {
		t.Fatal(status)
	}
	page2, _ := out["jobs"].([]any)
	if len(page2) != 1 {
		t.Fatalf("page2 %v", out)
	}
	if first, _ := page2[0].(map[string]any); first["id"] != "job-000003" {
		t.Fatalf("page2 first %v", page2)
	}
	if out["next_cursor"] != nil {
		t.Fatalf("exhausted listing still pages: %v", out)
	}
	// Status filter composes.
	status, out = do("GET", "/v1/jobs?status=succeeded", "")
	if status != http.StatusOK {
		t.Fatal(status)
	}
	if succeeded, _ := out["jobs"].([]any); len(succeeded) != 3 {
		t.Fatalf("succeeded filter: %v", out)
	}
	if status, _ = do("GET", "/v1/jobs?status=queued", ""); status != http.StatusOK {
		t.Fatal(status)
	}
}

// TestHTTPPriorityOrdering is the acceptance check on the wire: with a
// heavyweight batch sweep queued first, an interactive job submitted
// AFTER it finishes while the batch job has not even started — the
// priority queue dispatched the interactive one first. (If dispatch
// were FIFO, the interactive job could not finish before the
// minutes-long batch grid.)
func TestHTTPPriorityOrdering(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, AsyncThreshold: -1})
	defer srv.Close()
	_, do := testClient(t, srv)

	// Occupy the single job runner so both submissions queue.
	runningID, release := blockingJob(t, srv)
	waitRunning(t, srv, runningID)

	status, out := do("POST", "/v1/jobs",
		`{"macros": ["base", "macro-a", "macro-b", "macro-d"], "networks": ["resnet18"], "max_mappings": 400, "priority": "batch"}`)
	batchID := acceptedJobID(t, status, out)
	status, out = do("POST", "/v1/jobs",
		`{"macros": ["base"], "networks": ["toy"], "max_mappings": 1, "layers": 1, "priority": "interactive"}`)
	interID := acceptedJobID(t, status, out)

	if job, ok := out["job"].(map[string]any); !ok || job["priority"] != "interactive" {
		t.Fatalf("accepted snapshot priority: %v", out)
	}

	release()
	final := pollJob(t, do, interID)
	if final["status"] != "succeeded" {
		t.Fatalf("interactive job: %v", final)
	}
	// The heavyweight batch job must not have finished first.
	_, batchSnap := do("GET", "/v1/jobs/"+batchID, "")
	if batchSnap["status"] == "succeeded" {
		t.Fatalf("batch grid finished before the interactive job: %v", batchSnap)
	}
	if _, cancelOut := do("POST", "/v1/jobs/"+batchID+"/cancel", ""); cancelOut["id"] != batchID {
		t.Fatalf("cancel: %v", cancelOut)
	}
	pollJob(t, do, batchID)
}

// TestWALReplayPreservesPriority: a restart replays interrupted jobs in
// their original scheduling class.
func TestWALReplayPreservesPriority(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	// A deep grid occupies the runner; one job of each class queues
	// behind it. Close interrupts all three.
	big := Grid([]string{"base", "macro-b"}, []string{"mobilenetv3-large"}, nil, 0, 8)
	if _, err := first.SubmitSweepOpts(big, SweepJobOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	batchSnap, err := first.SubmitSweepOpts([]Request{{Macro: "base", Network: "toy", MaxMappings: 1, Layers: 1}},
		SweepJobOptions{Priority: jobs.PriorityBatch})
	if err != nil {
		t.Fatal(err)
	}
	interSnap, err := first.SubmitSweepOpts([]Request{{Macro: "base", Network: "toy", MaxMappings: 1, Layers: 1}},
		SweepJobOptions{Priority: jobs.PriorityInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if batchSnap.Priority != jobs.PriorityBatch || interSnap.Priority != jobs.PriorityInteractive {
		t.Fatalf("submitted priorities: %q %q", batchSnap.Priority, interSnap.Priority)
	}
	first.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	defer second.Close()
	if ps := second.PersistStats(); ps.Warm.Replayed != 3 {
		t.Fatalf("warm stats %+v, want 3 replayed", ps.Warm)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	gotBatch, err := second.WaitJob(ctx, batchSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotInter, err := second.WaitJob(ctx, interSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotBatch.Priority != jobs.PriorityBatch {
		t.Fatalf("replayed batch job came back %q", gotBatch.Priority)
	}
	if gotInter.Priority != jobs.PriorityInteractive {
		t.Fatalf("replayed interactive job came back %q", gotInter.Priority)
	}
}
