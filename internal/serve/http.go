package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/macros"
	"repro/internal/workload"
)

// Handler returns the HTTP JSON API:
//
//	GET  /healthz         liveness + cache counters
//	POST /v1/evaluate     one Request -> Result
//	POST /v1/sweep        {"requests": [...]} or a macro/network/scenario
//	                      grid -> {"results": [...], "table": "..."}
//	GET  /v1/macros       published macro models (Table III)
//	GET  /v1/networks     model-zoo workloads
//	GET  /v1/experiments  reproducible paper artifacts
//	POST /v1/experiments  {"name": "fig2a", ...} -> rendered tables
//
// All endpoints speak JSON; errors return {"error": "..."} with a 4xx/5xx
// status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/macros", s.handleMacros)
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments", s.handleExperimentRun)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.start).Seconds(),
		"cache":      s.CacheStats(),
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeJSON(w, r, &req) {
		return
	}
	res, err := s.Evaluate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sweepRequest is the /v1/sweep body: either an explicit request list or
// a grid specification, not both.
type sweepRequest struct {
	Requests []Request `json:"requests,omitempty"`

	Macros      []string `json:"macros,omitempty"`
	Networks    []string `json:"networks,omitempty"`
	Scenarios   []string `json:"scenarios,omitempty"`
	Layers      int      `json:"layers,omitempty"`
	MaxMappings int      `json:"max_mappings,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var body sweepRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	reqs := body.Requests
	if len(reqs) == 0 {
		reqs = Grid(body.Macros, body.Networks, body.Scenarios, body.Layers, body.MaxMappings)
	}
	results, err := s.Sweep(reqs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results": results,
		"table":   SweepTable(results).String(),
		"cache":   s.CacheStats(),
	})
}

func (s *Server) handleMacros(w http.ResponseWriter, r *http.Request) {
	type macroInfo struct {
		Macro      string `json:"macro"`
		Node       string `json:"node"`
		Device     string `json:"device"`
		InputBits  string `json:"input_bits"`
		WeightBits string `json:"weight_bits"`
		Array      string `json:"array"`
		ADCBits    string `json:"adc_bits"`
	}
	var out []macroInfo
	for _, m := range macros.TableIII() {
		out = append(out, macroInfo{m.Macro, m.Node, m.Device, m.InputBits, m.WeightBits, m.Array, m.ADCBits})
	}
	writeJSON(w, http.StatusOK, map[string]any{"macros": out})
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	type netInfo struct {
		Name   string `json:"name"`
		Layers int    `json:"layers"`
		MACs   int64  `json:"macs"`
	}
	var out []netInfo
	for _, name := range workload.Names() {
		n, err := workload.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, netInfo{n.Name, len(n.Layers), n.MACs()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": out})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	if s.ExperimentNames == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: experiment listing not wired"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": s.ExperimentNames()})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if s.RunExperiment == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: experiment runner not wired"))
		return
	}
	var body struct {
		Name        string `json:"name"`
		Fast        bool   `json:"fast,omitempty"`
		MaxMappings int    `json:"max_mappings,omitempty"`
		Seed        int64  `json:"seed,omitempty"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	tables, err := s.RunExperiment(body.Name, body.Fast, body.MaxMappings, body.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rendered := make([]string, 0, len(tables))
	for _, t := range tables {
		rendered = append(rendered, t.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": rendered})
}

// ListenAndServe starts the HTTP API on addr and blocks. It exists so
// `cimloop serve` is one call; tests use Handler with httptest instead.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}
