package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/macros"
	"repro/internal/serve/jobs"
	"repro/internal/workload"
)

// Handler returns the HTTP JSON API:
//
//	GET  /healthz              liveness + cache counters + job counts +
//	                           search-budget occupancy
//	POST /v1/evaluate          one Request -> Result
//	POST /v1/sweep             {"requests": [...]} or a macro/network/
//	                           scenario grid -> {"results": [...],
//	                           "table": "..."}; grids at or beyond the
//	                           async threshold (or "async": true) return
//	                           202 Accepted with a job instead
//	POST /v1/jobs              submit a sweep as an async job -> 202
//	                           {"job": {...}, "status_url": ...}; a full
//	                           queue returns 429 with a Retry-After header
//	GET  /v1/jobs              retained jobs, submission order
//	GET  /v1/jobs/{id}         one job: status, completed/total, partial
//	                           results, first error; 404 when unknown
//	POST /v1/jobs/{id}/cancel  request cancellation (idempotent); stops
//	                           in-flight layer searches
//	GET  /v1/macros            published macro models (Table III)
//	GET  /v1/networks          model-zoo workloads
//	GET  /v1/experiments       reproducible paper artifacts
//	POST /v1/experiments       {"name": "fig2a", ...} -> rendered tables
//
// All endpoints speak JSON; errors return {"error": "..."} with a 4xx/5xx
// status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /v1/macros", s.handleMacros)
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments", s.handleExperimentRun)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.start).Seconds(),
		"cache":      s.CacheStats(),
		"jobs":       s.JobStats(),
		"search":     s.SearchStats(),
		"persist":    s.PersistStats(),
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !decodeJSON(w, r, &req) {
		return
	}
	res, err := s.EvaluateCtx(r.Context(), req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sweepRequest is the /v1/sweep and /v1/jobs body: either an explicit
// request list or a grid specification, not both.
type sweepRequest struct {
	Requests []Request `json:"requests,omitempty"`

	Macros      []string `json:"macros,omitempty"`
	Networks    []string `json:"networks,omitempty"`
	Scenarios   []string `json:"scenarios,omitempty"`
	Layers      int      `json:"layers,omitempty"`
	MaxMappings int      `json:"max_mappings,omitempty"`

	// Async forces the job path regardless of grid size (/v1/sweep only;
	// /v1/jobs is always async).
	Async bool `json:"async,omitempty"`
	// TimeoutSec caps the sweep's run time: synchronous sweeps wrap the
	// request context, async jobs wrap the job context (measured from job
	// start), both via context.WithTimeout — expiry aborts in-flight
	// layer searches. Zero means no deadline.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// timeout converts TimeoutSec to a duration (0 = none; huge values
// saturate instead of overflowing negative).
func (b *sweepRequest) timeout() time.Duration {
	return secondsToTimeout(b.TimeoutSec)
}

func (b *sweepRequest) resolve() []Request {
	if len(b.Requests) > 0 {
		return b.Requests
	}
	return Grid(b.Macros, b.Networks, b.Scenarios, b.Layers, b.MaxMappings)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var body sweepRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	reqs := body.resolve()
	// Grid-sized sweeps don't hold the connection open: hand back a job.
	if thr := s.opts.asyncThreshold(); body.Async || (thr > 0 && len(reqs) >= thr) {
		s.acceptJob(w, reqs, body.timeout())
		return
	}
	// The request context stops the feeder when the client disconnects
	// and enforces the optional per-request deadline.
	ctx := r.Context()
	if d := body.timeout(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	results, err := s.SweepCtx(ctx, reqs, 0, nil)
	if err != nil {
		// A sweep killed by its own timeout_sec is a server-side timeout,
		// not a malformed request: clients keying retry logic on the
		// status class must be able to tell the two apart.
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results": results,
		"table":   SweepTable(results).String(),
		"cache":   s.CacheStats(),
	})
}

// acceptJob submits reqs as an async sweep job and answers 202 (or 429 +
// Retry-After under backpressure).
func (s *Server) acceptJob(w http.ResponseWriter, reqs []Request, timeout time.Duration) {
	snap, err := s.SubmitSweepOpts(reqs, SweepJobOptions{Timeout: timeout})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		secs := int(math.Ceil(s.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		// The server is shutting down, not the client misbehaving.
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job":        snap,
		"status_url": "/v1/jobs/" + snap.ID,
	})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var body sweepRequest
	if !decodeJSON(w, r, &body) {
		return
	}
	s.acceptJob(w, body.resolve(), body.timeout())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":  s.Jobs(),
		"stats": s.JobStats(),
	})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.CancelJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleMacros(w http.ResponseWriter, r *http.Request) {
	type macroInfo struct {
		Macro      string `json:"macro"`
		Node       string `json:"node"`
		Device     string `json:"device"`
		InputBits  string `json:"input_bits"`
		WeightBits string `json:"weight_bits"`
		Array      string `json:"array"`
		ADCBits    string `json:"adc_bits"`
	}
	var out []macroInfo
	for _, m := range macros.TableIII() {
		out = append(out, macroInfo{m.Macro, m.Node, m.Device, m.InputBits, m.WeightBits, m.Array, m.ADCBits})
	}
	writeJSON(w, http.StatusOK, map[string]any{"macros": out})
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	type netInfo struct {
		Name   string `json:"name"`
		Layers int    `json:"layers"`
		MACs   int64  `json:"macs"`
	}
	var out []netInfo
	for _, name := range workload.Names() {
		n, err := workload.ByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out = append(out, netInfo{n.Name, len(n.Layers), n.MACs()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": out})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	if s.ExperimentNames == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: experiment listing not wired"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": s.ExperimentNames()})
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if s.RunExperiment == nil {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("serve: experiment runner not wired"))
		return
	}
	var body struct {
		Name        string `json:"name"`
		Fast        bool   `json:"fast,omitempty"`
		MaxMappings int    `json:"max_mappings,omitempty"`
		Seed        int64  `json:"seed,omitempty"`
	}
	if !decodeJSON(w, r, &body) {
		return
	}
	tables, err := s.RunExperiment(body.Name, body.Fast, body.MaxMappings, body.Seed)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rendered := make([]string, 0, len(tables))
	for _, t := range tables {
		rendered = append(rendered, t.String())
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": rendered})
}

// ListenAndServe starts the HTTP API on addr and blocks. It exists so
// `cimloop serve` is one call; tests use Handler with httptest instead.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeCtx(context.Background(), addr)
}

// ListenAndServeCtx is ListenAndServe under a context: when ctx is
// cancelled (the CLI wires SIGINT/SIGTERM here) the listener shuts down
// gracefully and the server closes — cancelling jobs, flushing the
// write-behind persistence queues to disk, and leaving interrupted jobs'
// write-ahead records in place for the next boot to replay. Returns nil
// on a clean context-driven shutdown.
func (s *Server) ListenAndServeCtx(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	stop := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		case <-stop:
		}
	}()
	err := srv.ListenAndServe()
	close(stop)
	<-shutdownDone // if Shutdown started, let it finish draining handlers
	if ctx.Err() != nil && errors.Is(err, http.ErrServerClosed) {
		// Context-driven shutdown: this server is done for good — close
		// it so jobs drain and the persistence queues flush. On any other
		// return (a bind failure, say) the Server stays usable: an
		// embedder may retry on another address.
		s.Close()
		err = nil
	}
	return err
}
