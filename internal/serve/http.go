package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/macros"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
	"repro/internal/workload"
)

// Handler returns the HTTP JSON API. The wire contract — every request
// and response body, the error envelope, and the SSE event format — is
// defined in internal/serve/api and documented in docs/API.md:
//
//	GET  /healthz               liveness + cache/job/budget/persist/obs
//	                            stats (a JSON view of the same producers
//	                            /metrics exposes)
//	GET  /metrics               Prometheus text exposition of the
//	                            server's metrics registry (auth-exempt,
//	                            like /healthz)
//	GET  /v1/debug/slow         api.SlowResponse: the slow-request ring,
//	                            newest first; ?limit= truncates
//	GET  /v1/cluster            api.ClusterResponse: ring membership,
//	                            per-node health/version, key-ownership
//	                            split, blob-tier state
//	POST /v1/evaluate           api.EvalRequest -> api.EvalResult; on a
//	                            clustered server, requests owned by a
//	                            peer are forwarded to it (one hop,
//	                            guarded by X-Cimloop-Forwarded)
//	POST /v1/sweep              api.SweepRequest -> api.SweepResponse;
//	                            grids at or beyond the async threshold
//	                            (or "async": true) return 202 +
//	                            api.JobAccepted instead
//	POST /v1/jobs               submit a sweep as an async job -> 202 +
//	                            api.JobAccepted; "priority" selects the
//	                            scheduling class; a full queue returns
//	                            429 + Retry-After
//	GET  /v1/jobs               api.JobListResponse; ?status= filters,
//	                            ?limit= and ?cursor= page
//	GET  /v1/jobs/{id}          one jobs.Snapshot; ?after_version= and
//	                            ?wait_sec= long-poll for news
//	GET  /v1/jobs/{id}/events   Server-Sent Events progress stream;
//	                            Last-Event-ID resumes
//	POST /v1/jobs/{id}/cancel   request cancellation (idempotent)
//	GET  /v1/macros             api.MacrosResponse (Table III)
//	GET  /v1/networks           api.NetworksResponse (model zoo)
//	GET  /v1/experiments        api.ExperimentsResponse: built-in
//	                            experiments plus registered sweeps/
//	                            definitions with parameter schemas
//	POST /v1/experiments        api.ExperimentRunRequest -> tables
//	POST /v1/experiments/{name} api.NamedExperimentRequest: bind
//	                            parameters into a registered definition
//	                            and run its grid through the sweep path
//	                            (200 SweepResponse or 202 JobAccepted)
//
// Every response is JSON (the SSE stream frames JSON events); every
// error — including unknown routes, wrong methods, oversized bodies,
// and recovered panics — is the api.Error envelope with a stable
// machine-readable code.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/slow", s.handleSlow)
	mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluateRouted)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /v1/macros", s.handleMacros)
	mux.HandleFunc("GET /v1/networks", s.handleNetworks)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("POST /v1/experiments", s.handleExperimentRun)
	mux.HandleFunc("POST /v1/experiments/{name}", s.handleNamedExperiment)
	// Auth runs outside the mux so an unauthenticated request learns
	// nothing about the route table; /healthz and /metrics are exempt
	// inside withAuth. The obs middleware sits inside auth so spans carry
	// the authenticated tenant and 401s never mint route label sets.
	return withRecovery(withJSONErrors(s.withAuth(s.withObs(mux))))
}

// withJSONErrors rewrites the mux's built-in plain-text 404/405
// responses into the v1 error envelope, so a client never has to parse
// two error grammars. Handlers that write their own JSON errors (they
// set Content-Type before WriteHeader) pass through untouched.
func withJSONErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&jsonErrorWriter{ResponseWriter: w, req: r}, r)
	})
}

// jsonErrorWriter intercepts WriteHeader(404|405) calls whose
// Content-Type is not already JSON — exactly the net/http defaults —
// swallows the plain-text body that follows, and writes the envelope
// instead.
type jsonErrorWriter struct {
	http.ResponseWriter
	req         *http.Request
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.intercepted = true
		e := api.Errorf(api.CodeNotFound, "no route for %s %s", w.req.Method, w.req.URL.Path)
		if code == http.StatusMethodNotAllowed {
			e = api.Errorf(api.CodeMethodNotAllowed, "method %s not allowed on %s", w.req.Method, w.req.URL.Path)
			if allow := w.Header().Get("Allow"); allow != "" {
				e.Details = map[string]string{"allow": allow}
			}
		}
		h := w.Header()
		h.Del("Content-Length")
		h.Del("X-Content-Type-Options")
		h.Set("Content-Type", "application/json")
		w.ResponseWriter.WriteHeader(code)
		enc := json.NewEncoder(w.ResponseWriter)
		enc.SetIndent("", "  ")
		_ = enc.Encode(e)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		// Drop the plain-text body net/http writes after its WriteHeader;
		// the envelope already went out.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so SSE streaming works through
// the middleware.
func (w *jsonErrorWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRecovery turns a handler panic into a 500 + internal envelope
// instead of a severed connection with no body. http.ErrAbortHandler —
// the sanctioned "hang up now" panic — is re-raised untouched.
func withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			// Best effort: if the handler already streamed a partial body
			// this lands mid-stream, but for the overwhelmingly common
			// panic-before-write case the client gets a well-formed
			// envelope. The panic detail stays server-side.
			writeAPIError(w, http.StatusInternalServerError,
				api.Errorf(api.CodeInternal, "internal error handling %s %s", r.Method, r.URL.Path))
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeAPIError sends the v1 error envelope. Every error path in this
// file funnels through here, so the envelope shape cannot drift between
// endpoints.
func writeAPIError(w http.ResponseWriter, status int, e *api.Error) {
	if e.RetryAfterSec > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSec))
	}
	writeJSON(w, status, e)
}

// decodeJSON decodes a bounded request body, rejecting unknown fields
// (silent typos would otherwise evaluate the wrong thing) and oversized
// payloads (413 + envelope; the bound is BatchOptions.MaxBodyBytes).
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decodeBody(w, r, v, false)
}

// decodeJSONOptional is decodeJSON for endpoints where an absent body is
// a valid request (POST /v1/experiments/{name} with every parameter at
// its default): EOF before any JSON leaves v at its zero value.
func (s *Server) decodeJSONOptional(w http.ResponseWriter, r *http.Request, v any) bool {
	return s.decodeBody(w, r, v, true)
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any, allowEmpty bool) bool {
	limit := s.opts.maxBodyBytes()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil || (allowEmpty && errors.Is(err, io.EOF)) {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		e := api.Errorf(api.CodeInvalidRequest, "request body exceeds %d bytes", limit)
		e.Details = map[string]string{"max_bytes": strconv.FormatInt(limit, 10)}
		writeAPIError(w, http.StatusRequestEntityTooLarge, e)
		return false
	}
	writeAPIError(w, http.StatusBadRequest,
		api.Errorf(api.CodeInvalidRequest, "bad request body: %v", err))
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.HealthzResponse{
		Status:    "ok",
		Version:   api.Version,
		UptimeSec: time.Since(s.start).Seconds(),
		Cache:     s.CacheStats(),
		Jobs:      s.JobStats(),
		Search:    s.SearchStats(),
		Persist:   s.PersistStats(),
		Obs:       s.ObsStats(),
	})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req Request
	if !s.decodeJSON(w, r, &req) {
		return
	}
	res, err := s.EvaluateCtx(r.Context(), req)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// sweepTimeout converts a SweepRequest's TimeoutSec to a duration (0 =
// none; huge values saturate instead of overflowing negative).
func sweepTimeout(b *api.SweepRequest) time.Duration {
	return secondsToTimeout(b.TimeoutSec)
}

// resolveSweep expands a SweepRequest into its request list: the
// explicit list if present, the grid cross-product otherwise.
func resolveSweep(b *api.SweepRequest) []Request {
	if len(b.Requests) > 0 {
		return b.Requests
	}
	return Grid(b.Macros, b.Networks, b.Scenarios, b.Layers, b.MaxMappings)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var body api.SweepRequest
	if !s.decodeJSON(w, r, &body) {
		return
	}
	if !validSweepPriority(w, body.Priority) {
		return
	}
	reqs := resolveSweep(&body)
	// Grid-sized sweeps don't hold the connection open: hand back a job.
	if thr := s.opts.asyncThreshold(); body.Async || (thr > 0 && len(reqs) >= thr) {
		s.acceptJob(w, reqs, SweepJobOptions{
			Timeout:  sweepTimeout(&body),
			Priority: body.Priority,
			Tenant:   tenantFrom(r.Context()),
		})
		return
	}
	// The request context stops the feeder when the client disconnects
	// and enforces the optional per-request deadline.
	ctx := r.Context()
	if d := sweepTimeout(&body); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	results, err := s.SweepCtx(ctx, reqs, 0, nil)
	if err != nil {
		// A sweep killed by its own timeout_sec is a server-side timeout,
		// not a malformed request: clients keying retry logic on the
		// status class must be able to tell the two apart.
		if errors.Is(err, context.DeadlineExceeded) {
			writeAPIError(w, http.StatusGatewayTimeout, api.Errorf(api.CodeDeadlineExceeded, "%v", err))
			return
		}
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, api.SweepResponse{
		Results: results,
		Table:   SweepTable(results).String(),
		Cache:   s.CacheStats(),
	})
}

// validSweepPriority rejects unknown scheduling classes with the
// envelope (empty means batch and is fine).
func validSweepPriority(w http.ResponseWriter, p jobs.Priority) bool {
	if _, err := jobs.ParsePriority(string(p)); err != nil {
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return false
	}
	return true
}

// acceptJob submits reqs as an async sweep job and answers 202 (or 429 +
// Retry-After under backpressure).
func (s *Server) acceptJob(w http.ResponseWriter, reqs []Request, opts SweepJobOptions) {
	snap, err := s.SubmitSweepOpts(reqs, opts)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		secs := int(math.Ceil(s.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		e := api.Errorf(api.CodeQueueFull, "%v", err)
		var tq *jobs.TenantQueueFullError
		if errors.As(err, &tq) {
			// Per-tenant quota, not global backpressure: name the tenant so
			// a client can tell "my quota" from "the server is busy".
			e.Details = map[string]string{"tenant": tq.Tenant}
		}
		e.RetryAfterSec = secs
		writeAPIError(w, http.StatusTooManyRequests, e)
		return
	case errors.Is(err, jobs.ErrClosed):
		// The server is shutting down, not the client misbehaving.
		writeAPIError(w, http.StatusServiceUnavailable, api.Errorf(api.CodeShuttingDown, "%v", err))
		return
	case err != nil:
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	writeJSON(w, http.StatusAccepted, api.JobAccepted{
		Job:       snap,
		StatusURL: "/v1/jobs/" + snap.ID,
		EventsURL: "/v1/jobs/" + snap.ID + "/events",
	})
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var body api.SweepRequest
	if !s.decodeJSON(w, r, &body) {
		return
	}
	if !validSweepPriority(w, body.Priority) {
		return
	}
	s.acceptJob(w, resolveSweep(&body), SweepJobOptions{
		Timeout:  sweepTimeout(&body),
		Priority: body.Priority,
		Tenant:   tenantFrom(r.Context()),
	})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var lq jobs.ListQuery
	if v := q.Get("status"); v != "" {
		st := jobs.Status(v)
		switch st {
		case jobs.StatusQueued, jobs.StatusRunning, jobs.StatusSucceeded, jobs.StatusFailed, jobs.StatusCancelled:
			lq.Status = st
		default:
			writeAPIError(w, http.StatusBadRequest,
				api.Errorf(api.CodeInvalidRequest, "unknown status %q", v))
			return
		}
	}
	lq.Limit = DefaultJobPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeAPIError(w, http.StatusBadRequest,
				api.Errorf(api.CodeInvalidRequest, "limit must be a positive integer, got %q", v))
			return
		}
		lq.Limit = n
	}
	lq.After = q.Get("cursor")
	if s.tenantSet().Enabled() {
		// A tenant lists only its own jobs; the shared Stats block still
		// reflects the whole queue (capacity is a shared resource).
		lq.Tenant = tenantFrom(r.Context())
	}
	page, next := s.jobs.ListPage(lq)
	writeJSON(w, http.StatusOK, api.JobListResponse{
		Jobs:       page,
		Stats:      s.JobStats(),
		NextCursor: next,
	})
}

// DefaultJobPageLimit caps a GET /v1/jobs page when the client does not
// pass ?limit= (pagination must be opt-out-proof: an unbounded default
// would grow with retention).
const DefaultJobPageLimit = 100

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	// Long-poll mode: ?after_version=N&wait_sec=S parks the request until
	// the job has news beyond version N (or S seconds pass, returning the
	// unchanged snapshot — the client compares versions). The fallback
	// transport for clients that cannot speak SSE.
	var after int64 = -1
	if v := q.Get("after_version"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeAPIError(w, http.StatusBadRequest,
				api.Errorf(api.CodeInvalidRequest, "after_version must be a non-negative integer, got %q", v))
			return
		}
		after = n
	}
	if after < 0 {
		snap, ok := s.jobForTenant(r, id)
		if !ok {
			writeJobNotFound(w, id)
			return
		}
		writeJSON(w, http.StatusOK, snap)
		return
	}
	// Scope check before parking: another tenant's job must 404 now, not
	// hold the connection open against a job the caller may not see.
	if _, ok := s.jobForTenant(r, id); !ok {
		writeJobNotFound(w, id)
		return
	}
	// One poll round is always bounded: wait_sec caps it explicitly,
	// and an omitted wait_sec gets the maximum window rather than
	// parking the handler goroutine until the job (maybe never) moves.
	wait := float64(maxLongPollSec)
	if v := q.Get("wait_sec"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec < 0 || sec > maxLongPollSec {
			writeAPIError(w, http.StatusBadRequest,
				api.Errorf(api.CodeInvalidRequest, "wait_sec must be in [0, %d], got %q", maxLongPollSec, v))
			return
		}
		wait = sec
	}
	ctx, cancel := context.WithTimeout(r.Context(), secondsToTimeout(wait))
	defer cancel()
	snap, err := s.jobs.Await(ctx, id, after)
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		writeJobNotFound(w, id)
		return
	case err != nil:
		// The poll window elapsed with no news: answer the current state
		// (the client sees an unchanged version). A dropped client gets
		// whatever write fails silently — it is gone either way.
		snap, ok := s.jobForTenant(r, id)
		if !ok {
			writeJobNotFound(w, id)
			return
		}
		writeJSON(w, http.StatusOK, snap)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// maxLongPollSec bounds one long-poll round so an idle connection cannot
// pin a handler goroutine forever; clients re-arm.
const maxLongPollSec = 60

func writeJobNotFound(w http.ResponseWriter, id string) {
	writeAPIError(w, http.StatusNotFound, api.Errorf(api.CodeNotFound, "unknown job %q", id))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobForTenant(r, id); !ok {
		writeJobNotFound(w, id)
		return
	}
	snap, ok := s.CancelJob(id)
	if !ok {
		writeJobNotFound(w, id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleMacros(w http.ResponseWriter, r *http.Request) {
	var out api.MacrosResponse
	for _, m := range macros.TableIII() {
		out.Macros = append(out.Macros, api.MacroInfo{
			Macro: m.Macro, Node: m.Node, Device: m.Device,
			InputBits: m.InputBits, WeightBits: m.WeightBits,
			Array: m.Array, ADCBits: m.ADCBits,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleNetworks(w http.ResponseWriter, r *http.Request) {
	var out api.NetworksResponse
	for _, name := range workload.Names() {
		n, err := workload.ByName(name)
		if err != nil {
			writeAPIError(w, http.StatusInternalServerError, api.Errorf(api.CodeInternal, "%v", err))
			return
		}
		out.Networks = append(out.Networks, api.NetworkInfo{Name: n.Name, Layers: len(n.Layers), MACs: n.MACs()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	set := s.sweepSet()
	if s.ExperimentNames == nil && set.Len() == 0 {
		writeAPIError(w, http.StatusNotImplemented,
			api.Errorf(api.CodeNotImplemented, "experiment listing not wired"))
		return
	}
	out := api.ExperimentsResponse{Definitions: set.Infos()}
	if s.ExperimentNames != nil {
		out.Experiments = s.ExperimentNames()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	if s.RunExperiment == nil {
		writeAPIError(w, http.StatusNotImplemented,
			api.Errorf(api.CodeNotImplemented, "experiment runner not wired"))
		return
	}
	var body api.ExperimentRunRequest
	if !s.decodeJSON(w, r, &body) {
		return
	}
	tables, err := s.RunExperiment(body.Name, body.Fast, body.MaxMappings, body.Seed)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.Errorf(api.CodeInvalidRequest, "%v", err))
		return
	}
	out := api.ExperimentRunResponse{Tables: make([]string, 0, len(tables))}
	for _, t := range tables {
		out.Tables = append(out.Tables, t.String())
	}
	writeJSON(w, http.StatusOK, out)
}

// ListenAndServe starts the HTTP API on addr and blocks. It exists so
// `cimloop serve` is one call; tests use Handler with httptest instead.
func (s *Server) ListenAndServe(addr string) error {
	return s.ListenAndServeCtx(context.Background(), addr)
}

// ListenAndServeCtx is ListenAndServe under a context: when ctx is
// cancelled (the CLI wires SIGINT/SIGTERM here) the listener shuts down
// gracefully and the server closes — cancelling jobs, flushing the
// write-behind persistence queues to disk, and leaving interrupted jobs'
// write-ahead records in place for the next boot to replay. Returns nil
// on a clean context-driven shutdown.
func (s *Server) ListenAndServeCtx(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	stop := make(chan struct{})
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		select {
		case <-ctx.Done():
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shutdownCtx)
		case <-stop:
		}
	}()
	err := srv.ListenAndServe()
	close(stop)
	<-shutdownDone // if Shutdown started, let it finish draining handlers
	if ctx.Err() != nil && errors.Is(err, http.ErrServerClosed) {
		// Context-driven shutdown: this server is done for good — close
		// it so jobs drain and the persistence queues flush. On any other
		// return (a bind failure, say) the Server stays usable: an
		// embedder may retry on another address.
		s.Close()
		err = nil
	}
	return err
}
