package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve/jobs"
	"repro/internal/workload"
)

// warmRequest is the request both "processes" of the restart tests issue.
func warmRequest() Request {
	return Request{Macro: "base", Network: "toy", MaxMappings: 4}
}

// TestWarmStartRoundTrip is the acceptance path: populate a cache dir,
// "restart" (new Server over the same dir), and verify the first repeated
// request is served entirely from cache — hit counters move, miss stays
// zero, so nothing recompiled.
func TestWarmStartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	layers := len(workload.Toy().Layers)

	first := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
	if err := first.PersistError(); err != nil {
		t.Fatal(err)
	}
	res1, err := first.Evaluate(warmRequest())
	if err != nil {
		t.Fatal(err)
	}
	first.Close() // flushes the write-behind queue

	second := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
	defer second.Close()
	if err := second.PersistError(); err != nil {
		t.Fatal(err)
	}
	ps := second.PersistStats()
	if ps.Warm.Engines != 1 || ps.Warm.Contexts != layers || ps.Warm.Skipped != 0 {
		t.Fatalf("warm stats = %+v, want 1 engine / %d contexts", ps.Warm, layers)
	}
	cs := second.CacheStats()
	if cs.Restored != uint64(1+layers) || cs.Entries != 1+layers {
		t.Fatalf("cache stats after warm start = %+v, want %d restored entries", cs, 1+layers)
	}

	res2, err := second.Evaluate(warmRequest())
	if err != nil {
		t.Fatal(err)
	}
	cs = second.CacheStats()
	if cs.Misses != 0 {
		t.Fatalf("first repeated request after restart recompiled: stats %+v", cs)
	}
	if want := uint64(1 + layers); cs.Hits != want {
		t.Fatalf("hits = %d, want %d (engine + every layer context)", cs.Hits, want)
	}
	// Restored state answers identically (same counts; energies equal to
	// the accumulation ULP, see the persist codec tests).
	if res2.MACs != res1.MACs || res2.MappingsEvaluated != res1.MappingsEvaluated {
		t.Fatalf("restored evaluation diverged: %+v vs %+v", res2, res1)
	}
}

// TestWarmStartOptional: with no dirs configured nothing is persisted,
// nothing scanned, and stats stay disabled — the acceptance criterion
// that persistence is strictly opt-in.
func TestWarmStartOptional(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1})
	defer srv.Close()
	if ps := srv.PersistStats(); ps.Enabled || ps.Error != "" {
		t.Fatalf("persistence must be disabled by default: %+v", ps)
	}
	if _, err := srv.Evaluate(warmRequest()); err != nil {
		t.Fatal(err)
	}
	if cs := srv.CacheStats(); cs.Restored != 0 {
		t.Fatalf("no restores expected without a cache dir: %+v", cs)
	}
}

// TestWarmStartSurvivesCorruption: a corrupted, a truncated, and a
// foreign-kind file in the cache dir are skipped and deleted on boot;
// intact records still load. Never fatal.
func TestWarmStartSurvivesCorruption(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
	if _, err := first.Evaluate(warmRequest()); err != nil {
		t.Fatal(err)
	}
	first.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("expected persisted cache files")
	}
	// Flip a byte in the middle of the first record and truncate a copy of
	// another into a second file.
	victim := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trunc.cws"), data[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	second := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
	defer second.Close()
	ps := second.PersistStats()
	if ps.Warm.Skipped != 2 {
		t.Fatalf("warm stats = %+v, want 2 skipped (corrupt + truncated)", ps.Warm)
	}
	if got := ps.Warm.Engines + ps.Warm.Contexts; got != len(entries)-1 {
		t.Fatalf("loaded %d entries, want %d intact ones", got, len(entries)-1)
	}
	// The bad files are reclaimed.
	for _, name := range []string{victim, filepath.Join(dir, "trunc.cws")} {
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("%s must be deleted after the failed load", name)
		}
	}
	// And the server still serves.
	if _, err := second.Evaluate(warmRequest()); err != nil {
		t.Fatal(err)
	}
}

// TestJobSnapshotsSurviveRestart: a job that finished before the restart
// is still answerable — /v1/jobs/{id} returns its terminal snapshot.
func TestJobSnapshotsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	snap, err := first.SubmitSweep([]Request{warmRequest()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := first.WaitJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("job finished %s", final.Status)
	}
	first.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	defer second.Close()
	ps := second.PersistStats()
	if ps.Warm.Jobs != 1 || ps.Warm.Replayed != 0 {
		t.Fatalf("warm stats = %+v, want 1 restored job", ps.Warm)
	}
	got, ok := second.Job(snap.ID)
	if !ok {
		t.Fatalf("restarted instance must answer for job %s", snap.ID)
	}
	if got.Status != jobs.StatusSucceeded || got.Completed != 1 || got.Total != 1 {
		t.Fatalf("restored snapshot = %+v", got)
	}
	if table, ok := got.Result.(string); !ok || !strings.Contains(table, "base/toy") {
		t.Fatalf("restored job must keep its rendered result, got %#v", got.Result)
	}
	if got.Label != final.Label || got.ElapsedSec <= 0 {
		t.Fatalf("restored snapshot lost metadata: %+v", got)
	}
}

// TestQueuedJobsReplayAfterRestart: jobs accepted but not finished when
// the process stops keep their write-ahead records and run to completion
// on the next boot under their original IDs.
func TestQueuedJobsReplayAfterRestart(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	// A deep grid keeps the runner busy while two more jobs queue behind
	// it; Close interrupts all three mid-flight.
	big := Grid([]string{"base", "macro-b"}, []string{"mobilenetv3-large"}, nil, 0, 8)
	ids := make([]string, 0, 3)
	for _, reqs := range [][]Request{big, {warmRequest()}, {warmRequest()}} {
		snap, err := first.SubmitSweep(reqs, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	first.Close() // cancels all three; their WALs survive shutdown

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	defer second.Close()
	ps := second.PersistStats()
	if ps.Warm.Replayed != 3 || ps.Warm.Jobs != 0 {
		t.Fatalf("warm stats = %+v, want 3 replayed jobs", ps.Warm)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, id := range ids[1:] { // the small replays must finish
		final, err := second.WaitJob(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != jobs.StatusSucceeded {
			t.Fatalf("replayed job %s finished %s (%s)", id, final.Status, final.Error)
		}
	}
	// New submissions never collide with replayed IDs.
	snap, err := second.SubmitSweep([]Request{warmRequest()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if snap.ID == id {
			t.Fatalf("new job reused replayed ID %s", id)
		}
	}
}

// TestFinishedJobRetiresWAL: once a job completes, its WAL record is
// replaced by the terminal snapshot — a restart restores, not re-runs.
func TestFinishedJobRetiresWAL(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	snap, err := srv.SubmitSweep([]Request{warmRequest()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.WaitJob(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	defer second.Close()
	if ps := second.PersistStats(); ps.Warm.Replayed != 0 || ps.Warm.Jobs != 1 {
		t.Fatalf("finished job must restore (not replay): %+v", ps.Warm)
	}
}

// TestProgrammaticRequestsNotWALLogged: requests carrying prebuilt
// *Arch values cannot survive the WAL's JSON round trip, so such jobs
// are not write-ahead-logged — a restart must not replay them as
// unresolvable (failed) jobs; their terminal snapshots still persist.
func TestProgrammaticRequestsNotWALLogged(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	req := warmRequest()
	arch, err := resolveArch(&req)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := first.SubmitSweep([]Request{{Arch: arch, Network: "toy", MaxMappings: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := first.WaitJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusSucceeded {
		t.Fatalf("job finished %s (%s)", final.Status, final.Error)
	}
	first.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir})
	defer second.Close()
	ps := second.PersistStats()
	if ps.Warm.Replayed != 0 || ps.Warm.Jobs != 1 || ps.Warm.Skipped != 0 {
		t.Fatalf("warm stats = %+v, want 1 restored snapshot and no replay", ps.Warm)
	}
	if got, ok := second.Job(snap.ID); !ok || got.Status != jobs.StatusSucceeded {
		t.Fatalf("terminal snapshot must survive: ok=%v snap=%+v", ok, got)
	}
}

// TestCancelledQueuedJobRetiresWAL: a user cancel (not a shutdown) of a
// queued job persists the cancelled snapshot and drops the WAL, so the
// job does not rise from the dead on restart.
func TestCancelledQueuedJobRetiresWAL(t *testing.T) {
	dir := t.TempDir()
	first := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	// Occupy the single runner so the next submission stays queued.
	big := Grid([]string{"base", "macro-b"}, []string{"mobilenetv3-large"}, nil, 0, 8)
	if _, err := first.SubmitSweep(big, 1); err != nil {
		t.Fatal(err)
	}
	queued, err := first.SubmitSweep([]Request{warmRequest()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := first.CancelJob(queued.ID); !ok || snap.Status != jobs.StatusCancelled {
		t.Fatalf("cancel of queued job: ok=%v snap=%+v", ok, snap)
	}
	first.Close()

	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir, MaxRunningJobs: 1})
	defer second.Close()
	got, ok := second.Job(queued.ID)
	if !ok || got.Status != jobs.StatusCancelled {
		t.Fatalf("cancelled job must restore as cancelled: ok=%v snap=%+v", ok, got)
	}
	if ps := second.PersistStats(); ps.Warm.Replayed != 1 {
		// Only the interrupted big job replays; the cancelled one must not.
		t.Fatalf("warm stats = %+v, want exactly the interrupted job replayed", ps.Warm)
	}
}

// TestSharedDirRejected: pointing cache and jobs persistence at one
// directory would make each boot scan delete the other store's records;
// the server must refuse the configuration instead.
func TestSharedDirRejected(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(BatchOptions{CacheDir: dir, JobsDir: dir + string(os.PathSeparator)})
	defer srv.Close()
	if err := srv.PersistError(); err == nil {
		t.Fatal("shared cache/jobs dir must be rejected")
	}
	if ps := srv.PersistStats(); ps.Enabled {
		t.Fatalf("neither store may open on a shared dir: %+v", ps)
	}
	// The server itself still serves, just without durability.
	if _, err := srv.Evaluate(warmRequest()); err != nil {
		t.Fatal(err)
	}
}

// TestJobRetentionPrunesDisk: evicting a terminal job from the in-memory
// store also deletes its on-disk snapshot, so the jobs dir is bounded by
// the same retention — not an append-only log.
func TestJobRetentionPrunesDisk(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer(BatchOptions{Workers: 1, JobsDir: dir, JobRetention: 2})
	ctx := context.Background()
	var ids []string
	for i := 0; i < 5; i++ {
		snap, err := srv.SubmitSweep([]Request{warmRequest()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.WaitJob(ctx, snap.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	srv.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("jobs dir holds %d files, want 2 (retention bound)", len(entries))
	}
	second := NewServer(BatchOptions{Workers: 1, JobsDir: dir, JobRetention: 2})
	defer second.Close()
	if ps := second.PersistStats(); ps.Warm.Jobs != 2 {
		t.Fatalf("warm stats = %+v, want the 2 retained jobs", ps.Warm)
	}
	if _, ok := second.Job(ids[len(ids)-1]); !ok {
		t.Fatal("the newest job must survive retention")
	}
	if _, ok := second.Job(ids[0]); ok {
		t.Fatal("the oldest job must have been pruned from disk")
	}
}

// TestListenAndServeBindErrorKeepsServerUsable: a failed bind must not
// close the job store or persistence — embedders retry on another port.
func TestListenAndServeBindErrorKeepsServerUsable(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1})
	defer srv.Close()
	if err := srv.ListenAndServe("256.256.256.256:0"); err == nil {
		t.Fatal("expected a bind error")
	}
	if _, err := srv.SubmitSweep([]Request{warmRequest()}, 1); err != nil {
		t.Fatalf("job store must stay open after a bind failure: %v", err)
	}
}

// TestDriftedContextRecordRecovers: a persisted context whose energy
// tables no longer match the engine's level count (cross-dir copy,
// schema drift) must be recomputed at use, not panic mid-evaluation.
func TestDriftedContextRecordRecovers(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1})
	defer srv.Close()
	req := warmRequest()
	arch, err := resolveArch(&req)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := srv.cache.Engine(arch)
	if err != nil {
		t.Fatal(err)
	}
	layer := workload.Toy().Layers[0]
	good, err := srv.cache.LayerContext(eng, layer)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a drifted restore: admit a context with truncated energy
	// tables under the very key the evaluation path will use.
	data := good.Export()
	data.Energies = data.Energies[:len(data.Energies)-1]
	bad, err := core.RestoreLayerContext(data)
	if err != nil {
		t.Fatal(err)
	}
	key := contextKey(ArchFingerprint(eng.Arch()), LayerFingerprint(layer))
	srv.cache.invalidate(key, good)
	srv.cache.admit(key, 1.0, bad)

	got, err := srv.cache.LayerContext(eng, layer)
	if err != nil {
		t.Fatal(err)
	}
	if got.LevelCount() != good.LevelCount() {
		t.Fatalf("drifted context served with %d level tables, want recomputed %d",
			got.LevelCount(), good.LevelCount())
	}
	if _, err := srv.Evaluate(warmRequest()); err != nil {
		t.Fatalf("evaluation after recovery: %v", err)
	}
}

// TestSweepTimeout: a sweep submitted with a deadline fails with a
// deadline error instead of running forever.
func TestSweepTimeout(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, MaxRunningJobs: 1})
	defer srv.Close()
	big := Grid([]string{"base", "macro-b", "macro-d"}, []string{"mobilenetv3-large"}, nil, 0, 20)
	snap, err := srv.SubmitSweepOpts(big, SweepJobOptions{Workers: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := srv.WaitJob(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != jobs.StatusFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("timed-out job = %+v, want failed with a deadline error", final)
	}
}
