package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// pollJob polls GET /v1/jobs/{id} until the job reaches a terminal state.
func pollJob(t *testing.T, do func(method, path, body string) (int, map[string]any), id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, snap := do("GET", "/v1/jobs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("job get: %d %v", status, snap)
		}
		switch snap["status"] {
		case "succeeded", "failed", "cancelled":
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

// acceptedJobID unwraps a 202 response.
func acceptedJobID(t *testing.T, status int, out map[string]any) string {
	t.Helper()
	if status != http.StatusAccepted {
		t.Fatalf("status %d, want 202: %v", status, out)
	}
	job, ok := out["job"].(map[string]any)
	if !ok {
		t.Fatalf("202 without job: %v", out)
	}
	id, _ := job["id"].(string)
	if id == "" {
		t.Fatalf("202 without job id: %v", out)
	}
	if url, _ := out["status_url"].(string); url != "/v1/jobs/"+id {
		t.Fatalf("status_url %q", url)
	}
	return id
}

// TestHTTPOversizedSweepBecomesJob checks the 202 handoff: a grid at the
// async threshold returns a job instead of blocking, and polling the job
// reaches a succeeded state with per-item progress and the sweep table.
func TestHTTPOversizedSweepBecomesJob(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 2, AsyncThreshold: 2})
	defer srv.Close()
	_, do := testClient(t, srv)

	status, out := do("POST", "/v1/sweep",
		`{"macros": ["base", "macro-b"], "networks": ["toy"], "max_mappings": 2}`)
	id := acceptedJobID(t, status, out)

	final := pollJob(t, do, id)
	if final["status"] != "succeeded" {
		t.Fatalf("final: %v", final)
	}
	if c, _ := final["completed"].(float64); c != 2 {
		t.Fatalf("completed %v, want 2", final["completed"])
	}
	if tot, _ := final["total"].(float64); tot != 2 {
		t.Fatalf("total %v", final["total"])
	}
	results, _ := final["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("partial results: %v", final["results"])
	}
	table, _ := final["result"].(string)
	if !strings.Contains(table, "Batch sweep") {
		t.Fatalf("result table: %v", final["result"])
	}

	// Under the threshold the endpoint still answers synchronously.
	status, out = do("POST", "/v1/sweep",
		`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`)
	if status != http.StatusOK || out["results"] == nil {
		t.Fatalf("small sweep went async: %d %v", status, out)
	}
}

// TestHTTPExplicitAsyncAndJobsEndpoint checks "async": true and the
// dedicated POST /v1/jobs submission path.
func TestHTTPExplicitAsyncAndJobsEndpoint(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1, AsyncThreshold: -1})
	defer srv.Close()
	_, do := testClient(t, srv)

	// Threshold disabled, but the client opts in explicitly.
	status, out := do("POST", "/v1/sweep",
		`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2, "async": true}`)
	id := acceptedJobID(t, status, out)
	pollJob(t, do, id)

	// POST /v1/jobs is always async.
	status, out = do("POST", "/v1/jobs",
		`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`)
	id2 := acceptedJobID(t, status, out)
	if id2 == id {
		t.Fatalf("job IDs not unique: %s", id2)
	}
	pollJob(t, do, id2)

	// Both retained and listed in submission order.
	status, out = do("GET", "/v1/jobs", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	listed, _ := out["jobs"].([]any)
	if len(listed) != 2 {
		t.Fatalf("listed %d jobs: %v", len(listed), out)
	}
	first, _ := listed[0].(map[string]any)
	if first["id"] != id {
		t.Fatalf("list order: %v", listed)
	}

	// Healthz surfaces job occupancy next to the cache counters.
	status, health := do("GET", "/healthz", "")
	if status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	jstats, ok := health["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing jobs: %v", health)
	}
	if f, _ := jstats["finished"].(float64); f != 2 {
		t.Fatalf("healthz job stats: %v", jstats)
	}
}

// TestHTTPJobNotFound checks unknown job IDs 404 on both get and cancel.
func TestHTTPJobNotFound(t *testing.T) {
	srv := NewServer(BatchOptions{})
	defer srv.Close()
	_, do := testClient(t, srv)
	status, out := do("GET", "/v1/jobs/job-999999", "")
	if status != http.StatusNotFound || out["error"] == "" {
		t.Fatalf("get unknown: %d %v", status, out)
	}
	status, out = do("POST", "/v1/jobs/job-999999/cancel", "")
	if status != http.StatusNotFound || out["error"] == "" {
		t.Fatalf("cancel unknown: %d %v", status, out)
	}
}

// TestHTTPJobCancel submits a heavyweight job over HTTP, cancels it, and
// polls to the cancelled state.
func TestHTTPJobCancel(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 1})
	defer srv.Close()
	_, do := testClient(t, srv)

	status, out := do("POST", "/v1/jobs",
		`{"macros": ["base", "macro-a", "macro-b", "macro-d"], "networks": ["resnet18"], "max_mappings": 400}`)
	id := acceptedJobID(t, status, out)

	status, snap := do("POST", "/v1/jobs/"+id+"/cancel", "")
	if status != http.StatusOK {
		t.Fatalf("cancel: %d %v", status, snap)
	}
	final := pollJob(t, do, id)
	if final["status"] != "cancelled" {
		t.Fatalf("final: %v", final)
	}
	// Cancelling again after the terminal state stays a 200 no-op.
	status, snap = do("POST", "/v1/jobs/"+id+"/cancel", "")
	if status != http.StatusOK || snap["status"] != "cancelled" {
		t.Fatalf("duplicate cancel: %d %v", status, snap)
	}
}

// TestHTTPClosedStore503 checks a shutting-down server answers job
// submissions with 503, not a client-blaming 400.
func TestHTTPClosedStore503(t *testing.T) {
	srv := NewServer(BatchOptions{})
	_, do := testClient(t, srv)
	srv.Close()
	status, out := do("POST", "/v1/jobs", `{"macros": ["base"], "networks": ["toy"]}`)
	if status != http.StatusServiceUnavailable || out["error"] == "" {
		t.Fatalf("submit after close: %d %v", status, out)
	}
}

// TestHTTPQueueFull429 checks the backpressure contract on the wire: a
// saturated job queue answers 429 with a Retry-After header.
func TestHTTPQueueFull429(t *testing.T) {
	srv := NewServer(BatchOptions{
		MaxRunningJobs: 1, MaxQueuedJobs: 1,
		JobRetryAfter: 3 * time.Second,
	})
	defer srv.Close()
	ts, do := testClient(t, srv)

	runningID, release := blockingJob(t, srv)
	defer release()
	waitRunning(t, srv, runningID)
	_, releaseQueued := blockingJob(t, srv)
	defer releaseQueued()

	// The helper hides headers; issue the saturating request manually.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want \"3\"", ra)
	}

	// An oversized synchronous sweep hitting the same wall also 429s.
	srv2 := NewServer(BatchOptions{
		AsyncThreshold: 1, MaxRunningJobs: 1, MaxQueuedJobs: 1,
	})
	defer srv2.Close()
	ts2, _ := testClient(t, srv2)
	running2, release2 := blockingJob(t, srv2)
	defer release2()
	waitRunning(t, srv2, running2)
	_, releaseQueued2 := blockingJob(t, srv2)
	defer releaseQueued2()
	resp2, err := ts2.Client().Post(ts2.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"macros": ["base"], "networks": ["toy"], "max_mappings": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sweep status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("sweep 429 without Retry-After")
	}
	_ = do
}
