// Package serve is the concurrent batch-evaluation service: a bounded
// worker pool that fans evaluation requests (macro x network x system
// scenario grids) across goroutines, backed by a content-addressed LRU
// cache of compiled engines and per-layer contexts so amortized state is
// shared across requests instead of recompiled per call.
//
// The paper's speed claim rests on computing per-layer action energies
// once and reusing them across thousands of mappings; serve extends that
// amortization across requests: many clients sweeping the same macros and
// networks share cached state, and a warm sweep pays only the per-mapping
// count analysis.
//
// Use it directly:
//
//	srv := serve.NewServer(serve.BatchOptions{Workers: 8})
//	results, _ := srv.Sweep(serve.Grid([]string{"macro-a", "macro-b"},
//	    []string{"resnet18"}, nil, 0, 0))
//	fmt.Println(serve.SweepTable(results).String())
//
// or over HTTP via Server.Handler (see http.go and `cimloop serve`).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
	"repro/internal/specfile"
	"repro/internal/sweepdef"
	"repro/internal/system"
	"repro/internal/workload"
)

// DefaultAsyncThreshold is the grid size at which /v1/sweep stops
// answering synchronously and hands back a job instead.
const DefaultAsyncThreshold = 16

// BatchOptions tunes the service. The zero value is usable: one worker
// per CPU, the default mapping budget, and the default cache bound.
type BatchOptions struct {
	// Workers bounds the evaluation goroutines (default: NumCPU).
	Workers int
	// MaxMappings is the default per-layer mapping search budget for
	// requests that do not set their own (default 60, matching the
	// experiment runner).
	MaxMappings int
	// SearchWorkers is the default intra-request mapping-search fan-out:
	// each layer's candidate evaluations spread across up to this many
	// goroutines. Parallel search is bit-identical to serial —
	// deterministic minimum-cost, lowest-index winner — so the knob only
	// trades goroutines for single-request latency. Zero (the default)
	// picks the width adaptively per layer from measured candidate cost
	// (see searchTuner); negative forces serial search. The fan-out draws
	// on a concurrency budget shared with the request-level worker pool,
	// so nested parallelism never oversubscribes: a saturated pool
	// degrades searches to serial, a lone request gets the whole budget.
	SearchWorkers int
	// SampleShards is the default candidate-generation shard count
	// (core.SearchOptions.SampleShards): > 1 generates each layer's
	// candidates from that many concurrent seeded streams with a
	// deterministic merge. Results are a pure function of
	// (seed, shard count) — but a *different* function than the
	// single-stream default, so the server never picks this adaptively;
	// it is fixed configuration (or per-request via sample_shards) and
	// defaults to 1, preserving every historical result byte for byte.
	SampleShards int
	// CacheEntries bounds the engine/context cache (default
	// DefaultCacheEntries).
	CacheEntries int

	// CacheDir enables durable warm starts for the engine/context cache:
	// computed entries stream to this directory through a write-behind
	// queue, and a new server admits them back on boot so its first
	// repeated request is a cache hit instead of a recompilation. Empty
	// disables persistence (behavior is then byte-identical to earlier
	// versions).
	CacheDir string
	// JobsDir enables job durability: terminal jobs are snapshotted (a
	// restarted instance answers /v1/jobs/{id} for prior work) and
	// accepted-but-unfinished jobs are write-ahead-logged and replayed on
	// boot. Empty disables job persistence.
	JobsDir string

	// AsyncThreshold promotes /v1/sweep grids of at least this many
	// requests to async jobs answered with 202 Accepted (default
	// DefaultAsyncThreshold). Negative disables size-based promotion
	// only: clients can still opt in per request ("async": true) or use
	// /v1/jobs directly.
	AsyncThreshold int
	// MaxRunningJobs bounds concurrently running async jobs (default 1:
	// one job at a time owns the evaluation worker pool).
	MaxRunningJobs int
	// MaxQueuedJobs bounds the pending job queue; submissions beyond it
	// are rejected with 429 + Retry-After (default 8).
	MaxQueuedJobs int
	// JobRetention bounds retained finished jobs (default 64).
	JobRetention int
	// JobRetryAfter is the Retry-After hint paired with a 429 (default 1s).
	JobRetryAfter time.Duration

	// MaxBodyBytes bounds every request body the HTTP layer will read
	// (default DefaultMaxBodyBytes). Oversized bodies are rejected with
	// 413 and an invalid_request error envelope instead of being decoded
	// unbounded.
	MaxBodyBytes int64

	// ClusterNodeID and ClusterPeers turn the server into one member of a
	// static ring (see internal/cluster and docs/CLUSTER.md): NodeID must
	// match one entry of the Peers list ("id=url,id=url,..."), ownership
	// of cache keys and evaluation requests is split by consistent
	// hashing, and POST /v1/evaluate requests owned by a peer are
	// forwarded to it. Both empty disables clustering (the default;
	// behavior is then identical to earlier versions).
	ClusterNodeID string
	ClusterPeers  string
	// ClusterVNodes overrides the ring's virtual-node count (default
	// cluster.DefaultVirtualNodes). Every member must use the same value.
	ClusterVNodes int
	// BlobURL layers a shared remote blob tier (a `cimloop blobd`
	// process, or any HTTP object store speaking the persist envelope)
	// under the local cache: cold compiles write through to it, and cache
	// misses read through it before compiling — so any node's compile
	// warm-starts every other node. Usable with or without the ring.
	BlobURL string

	// Tenants enables multi-tenant mode (see LoadTenantsFile and
	// docs/TENANCY.md): every /v1 request must carry a bearer token from
	// the tenant file, jobs are scheduled by per-tenant weighted fair
	// queuing with per-tenant pending quotas, and each tenant sees only
	// its own jobs. Nil (the default) keeps the server anonymous and
	// open, byte-identical to earlier versions. The set can be hot-swapped
	// later via ReloadTenants (the CLI wires SIGHUP to it).
	Tenants *Tenants

	// SweepDefs registers a set of declarative sweep definitions (package
	// sweepdef, normally loaded from a sweeps/ directory) as named,
	// parameterized experiments behind GET /v1/experiments and
	// POST /v1/experiments/{name}. Nil serves no definitions; the set can
	// be hot-swapped later via ReloadSweepDefs (the CLI wires SIGHUP to
	// it, next to the tenant reload).
	SweepDefs *sweepdef.Set

	// SlowLogSize bounds the /v1/debug/slow request ring (default
	// DefaultSlowLogSize).
	SlowLogSize int
	// SlowThreshold is the duration at or above which a finished request
	// or sweep item is captured into the slow log. Zero (the default)
	// records everything — the ring is small and this keeps
	// /v1/debug/slow useful out of the box; negative disables recording.
	SlowThreshold time.Duration
}

// DefaultMaxBodyBytes is the default HTTP request-body bound (1 MiB —
// generous for explicit request lists, far beyond any grid spec).
const DefaultMaxBodyBytes = 1 << 20

func (o BatchOptions) maxBodyBytes() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

func (o BatchOptions) asyncThreshold() int {
	switch {
	case o.AsyncThreshold > 0:
		return o.AsyncThreshold
	case o.AsyncThreshold < 0:
		return 0 // disabled
	}
	return DefaultAsyncThreshold
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o BatchOptions) mappings() int {
	if o.MaxMappings > 0 {
		return o.MaxMappings
	}
	return 60
}

// searchWorkers resolves the configured default fan-out: > 0 is that
// fixed width, negative is serial (1), and 0 — the zero value — is the
// adaptive sentinel (the tuner picks a width per layer).
func (o BatchOptions) searchWorkers() int {
	if o.SearchWorkers > 0 {
		return o.SearchWorkers
	}
	if o.SearchWorkers < 0 {
		return 1
	}
	return 0 // adaptive
}

func (o BatchOptions) adaptiveSearch() bool { return o.SearchWorkers == 0 }

func (o BatchOptions) sampleShards() int {
	if o.SampleShards > 1 {
		return o.SampleShards
	}
	return 1
}

// budgetCapacity sizes the shared concurrency budget: wide enough for the
// request pool at full tilt, and for the configured search fan-out when a
// single request has the server to itself. In adaptive mode the widest
// useful fan-out is one goroutine per CPU.
func (o BatchOptions) budgetCapacity() int {
	n := o.workers()
	if o.adaptiveSearch() {
		if c := runtime.NumCPU(); c > n {
			n = c
		}
	} else if sw := o.searchWorkers(); sw > n {
		n = sw
	}
	return n
}

// Server owns the shared cache and worker bound. It is safe for
// concurrent use; one Server is meant to outlive many requests.
type Server struct {
	opts    BatchOptions
	cache   *Cache
	jobs    *jobs.Store
	budget  *tokenBudget
	tuner   searchTuner
	persist persistState
	cluster clusterState
	start   time.Time
	// met and slow are the observability spine (see obs.go): every
	// subsystem reports into met's registry, /metrics and /healthz are
	// two views of it, and finished request spans land in slow.
	met  *serverMetrics
	slow *obs.SlowLog
	// tenants is the live tenant set. It is read per request and swapped
	// atomically by ReloadTenants (SIGHUP token rotation), so a reload
	// never tears a request between two sets.
	tenants atomic.Pointer[Tenants]
	// sweeps is the live sweep-definition set (see sweeps.go), swapped
	// atomically by ReloadSweepDefs under the same never-tear rule.
	sweeps atomic.Pointer[sweepdef.Set]
	// mappingsEvaluated is the cumulative count of candidate mappings
	// evaluated since boot, surfaced in /healthz. Checkpointed resume is
	// observable through it: a resumed sweep adds only its unfinished
	// items' evaluations.
	mappingsEvaluated atomic.Int64

	// ExperimentNames and RunExperiment are injected by the facade so the
	// HTTP API can list and run paper reproductions without this package
	// importing the experiments package (which itself routes sweeps
	// through serve).
	ExperimentNames func() []string
	RunExperiment   func(name string, fast bool, maxMappings int, seed int64) ([]*report.Table, error)
}

// NewServer constructs a service with its own cache and job store. With
// CacheDir/JobsDir configured it also opens the durable stores and warm-
// starts from them: the cache dir is scanned in bounded parallel and
// entries admitted through the normal eviction policy; terminal jobs are
// restored and interrupted ones replayed. Store failures degrade to a
// non-persistent server (see PersistError) — persistence is strictly
// optional.
func NewServer(opts BatchOptions) *Server {
	s := &Server{
		opts:   opts,
		cache:  NewCache(opts.CacheEntries),
		budget: newTokenBudget(opts.budgetCapacity()),
		start:  time.Now(),
	}
	s.met = newServerMetrics(obs.NewRegistry())
	s.slow = obs.NewSlowLog(opts.slowLogSize(), opts.SlowThreshold)
	s.tenants.Store(opts.Tenants)
	s.sweeps.Store(opts.SweepDefs)
	s.openPersist(opts.CacheDir, opts.JobsDir)
	if s.persist.cache != nil {
		s.persist.cache.SetObserver(s.persistObserver("cache"))
	}
	if s.persist.jobs != nil {
		s.persist.jobs.SetObserver(s.persistObserver("jobs"))
	}
	s.initCluster(opts)
	if s.persist.cache != nil || s.cluster.remote != nil {
		s.cache.onFill = s.cacheFillHook()
	}
	if s.cluster.remote != nil {
		// L3 read-through: a local miss consults the shared blob tier
		// before compiling, under the cache's per-key singleflight.
		s.cache.loader = s.remoteLoader()
	}
	jo := jobs.Options{
		MaxRunning:      opts.MaxRunningJobs,
		MaxQueued:       opts.MaxQueuedJobs,
		Retention:       opts.JobRetention,
		RetryAfter:      opts.JobRetryAfter,
		Tenants:         opts.Tenants.JobTenants(),
		ObserveDispatch: s.observeDispatch,
	}
	if s.persist.jobs != nil {
		jo.OnTerminal = s.jobTerminalHook()
		// Retention eviction reaches through to disk, so the jobs dir is
		// bounded by the same retention as the in-memory store.
		jo.OnEvicted = func(id string) {
			s.persist.jobs.Delete(persist.KindJob, jobSnapKey(id))
		}
	}
	s.jobs = jobs.NewStore(jo)
	s.registerCollectors()
	s.warmStartCache()
	s.warmStartJobs()
	return s
}

// persistObserver adapts one write-behind store's latency callback onto
// the per-store write histogram.
func (s *Server) persistObserver(store string) func(d time.Duration, ok bool) {
	h := s.met.persistWrite.With(store)
	return func(d time.Duration, ok bool) { h.Observe(d.Seconds()) }
}

// CacheStats snapshots the shared cache counters.
func (s *Server) CacheStats() Stats { return s.cache.Stats() }

// JobStats snapshots the job store's occupancy.
func (s *Server) JobStats() jobs.Stats { return s.jobs.Stats() }

// SearchStats snapshots the shared evaluation-concurrency budget and, in
// adaptive mode, the width tuner.
func (s *Server) SearchStats() BudgetStats {
	st := BudgetStats{
		Capacity:          s.budget.capacity(),
		Available:         s.budget.available(),
		SearchWorkers:     s.opts.searchWorkers(),
		BlockedAcquires:   s.budget.blockedAcquires(),
		Adaptive:          s.opts.adaptiveSearch(),
		MappingsEvaluated: s.mappingsEvaluated.Load(),
	}
	if st.Adaptive {
		st.AdaptivePlans, st.TunedLayers = s.tuner.stats()
	}
	return st
}

// Close cancels every queued or running job, waits for the job runners
// to drain, then flushes and closes the durable stores (interrupted jobs
// keep their write-ahead records and replay on the next boot). The cache
// stays usable; Close exists so tests and embedding programs shut the
// async machinery down deterministically.
func (s *Server) Close() {
	s.jobs.Close()
	s.closePersist()
	s.closeCluster()
}

// Request describes one evaluation. It is the wire type
// api.EvalRequest — the contract lives in internal/serve/api; this alias
// keeps programmatic callers (experiments, the facade) on the short
// name.
type Request = api.EvalRequest

// Result is one completed evaluation (the wire type api.EvalResult).
type Result = api.EvalResult

// resolveArch materializes the request's architecture, applying the
// optional full-system wrap.
func resolveArch(r *Request) (*core.Arch, error) {
	sources := 0
	for _, set := range []bool{r.Macro != "", r.Spec != "", r.Arch != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, errors.New("serve: request needs exactly one of macro, spec, or arch")
	}
	var arch *core.Arch
	var err error
	switch {
	case r.Arch != nil:
		arch = r.Arch
	case r.Macro != "":
		arch, err = macros.ByName(r.Macro)
	default:
		arch, err = specfile.Parse(r.Spec)
	}
	if err != nil {
		return nil, err
	}
	if r.Scenario == "" {
		return arch, nil
	}
	sc, err := scenarioByName(r.Scenario)
	if err != nil {
		return nil, err
	}
	n := r.SystemMacros
	if n <= 0 {
		n = 1
	}
	return system.Build(arch, sc, system.Config{Macros: n})
}

// scenarioByName parses the Fig. 15 scenario names as Scenario.String
// prints them.
func scenarioByName(name string) (system.Scenario, error) {
	for _, sc := range []system.Scenario{system.AllDRAM, system.WeightStationary, system.OnChipIO} {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown scenario %q (have %q, %q, %q)", name,
		system.AllDRAM, system.WeightStationary, system.OnChipIO)
}

// resolveNet materializes the request's workload.
func resolveNet(r *Request) (*workload.Network, error) {
	if (r.Network != "") == (r.Net != nil) {
		return nil, errors.New("serve: request needs exactly one of network name or prebuilt net")
	}
	net := r.Net
	if r.Network != "" {
		var err error
		net, err = workload.ByName(r.Network)
		if err != nil {
			return nil, err
		}
	}
	if r.Layers > 0 && r.Layers < len(net.Layers) {
		cp := *net
		cp.Layers = net.Layers[:r.Layers]
		net = &cp
	}
	return net, nil
}

// Blocking budget mode: how long one layer's fan-out acquisition may
// park for its first token. budgetWaitCap bounds the wait absolutely;
// a request whose deadline is nearer than budgetHeadroomMin never
// blocks at all (its remaining time belongs to the search itself).
const (
	budgetWaitCap     = 250 * time.Millisecond
	budgetHeadroomMin = 2 * time.Second
)

// blockingWait sizes the per-layer blocking-acquire window from the
// request's deadline: no deadline means the full cap, a near deadline
// means no blocking, and in between the wait is a small fraction of the
// headroom (headroom/16, capped) so even a many-layer network spends a
// bounded share of its budget parked.
func blockingWait(ctx context.Context) time.Duration {
	d, ok := ctx.Deadline()
	if !ok {
		return budgetWaitCap
	}
	headroom := time.Until(d)
	if headroom < budgetHeadroomMin {
		return 0
	}
	if w := headroom / 16; w < budgetWaitCap {
		return w
	}
	return budgetWaitCap
}

// Evaluate runs one request through the cache: the engine and every layer
// context are fetched (or compiled once) from the content-addressed
// cache, and only the per-mapping count analysis runs unconditionally.
func (s *Server) Evaluate(req Request) (*Result, error) {
	return s.EvaluateCtx(context.Background(), req)
}

// EvaluateCtx is Evaluate under a context: cancellation and deadlines
// are checked between layers and inside each layer's mapping search, so
// a cancelled request (client disconnect, job cancel) stops in-flight
// work instead of finishing the evaluation.
func (s *Server) EvaluateCtx(ctx context.Context, req Request) (*Result, error) {
	started := time.Now()
	sp := obs.FromContext(ctx)
	arch, err := resolveArch(&req)
	if err != nil {
		return nil, err
	}
	net, err := resolveNet(&req)
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	lookup := time.Now()
	compiled := sp.Phase("compile")
	eng, err := s.cache.EngineCtx(ctx, arch)
	if err != nil {
		return nil, err
	}
	compiled = observeCacheLookup(sp, lookup, compiled)
	mappings := req.MaxMappings
	if mappings <= 0 {
		mappings = s.opts.mappings()
	}
	// Per-request search_workers: > 0 fixed width, negative serial, 0
	// defers to the server default — which may itself be the adaptive
	// sentinel (0), in which case the tuner picks a width per layer.
	searchWorkers := req.SearchWorkers
	adaptive := false
	switch {
	case searchWorkers < 0:
		searchWorkers = 1
	case searchWorkers == 0:
		searchWorkers = s.opts.searchWorkers()
		adaptive = searchWorkers == 0
	}
	// Shard count is part of the result's identity (it selects the
	// candidate set), so unlike the width it is never adapted: request
	// field, else server configuration, else 1 (the historical stream).
	shards := req.SampleShards
	if shards <= 0 {
		shards = s.opts.sampleShards()
	}
	// Every evaluating goroutine — a sweep worker or a direct caller —
	// holds one budget token for the duration of its request, so the
	// budget is a single cap on actively-evaluating goroutines. Best
	// effort: a caller that finds the budget empty proceeds anyway
	// (requests must be served), it just cannot borrow fan-out extras.
	self := s.budget.tryAcquire(1)
	defer s.budget.release(self)
	// Mirror core.Engine.EvaluateNetwork, but fetch each layer's
	// amortized context through the cache instead of re-preparing it.
	nr := &core.NetworkResult{Arch: eng.Arch().Name, Network: net.Name, AreaUm2: eng.Area()}
	for i, l := range net.Layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lookup = time.Now()
		lctx, err := s.cache.LayerContextCtx(ctx, eng, l)
		if err != nil {
			return nil, fmt.Errorf("serve: network %q layer %q: %w", net.Name, l.Name, err)
		}
		compiled = observeCacheLookup(sp, lookup, compiled)
		// The calling goroutine is one search worker for free; extras are
		// borrowed per layer from the shared budget so concurrent requests
		// split the machine instead of stacking goroutines. Returned
		// between layers, the tokens keep the split fluid. A request with
		// ample deadline headroom may park briefly for its first extra
		// token (blocking budget mode) rather than degrade to a serial
		// search the moment the pool is saturated.
		width := searchWorkers
		var key string
		if adaptive {
			key = tunerKey(arch.Name, l.Name)
			width = s.tuner.width(key, mappings, s.budget.capacity())
		}
		extra := 0
		if width > 1 {
			extra = s.budget.acquireWait(ctx, width-1, blockingWait(ctx))
		}
		searchStart := time.Now()
		r, evaluated, err := eng.SearchLayerOptsCtx(ctx, lctx, core.SearchOptions{
			MaxMappings:   mappings,
			Seed:          req.Seed + int64(i),
			SearchWorkers: 1 + extra,
			SampleShards:  shards,
		})
		s.budget.release(extra)
		sp.Observe("search", time.Since(searchStart))
		if err != nil {
			return nil, fmt.Errorf("serve: network %q layer %q: %w", net.Name, l.Name, err)
		}
		if adaptive {
			s.tuner.observe(key, evaluated, 1+extra, time.Since(searchStart))
		}
		nr.PerLayer = append(nr.PerLayer, r)
		rep := float64(l.Repeat)
		nr.Energy += r.Energy * rep
		nr.TimeSec += r.TimeSec * rep
		nr.MACs += r.MACs * int64(l.Repeat)
		nr.MappingsEvaluated += int64(evaluated)
	}
	s.mappingsEvaluated.Add(nr.MappingsEvaluated)
	res := &Result{
		Tag:               requestTag(&req, arch.Name, net.Name),
		Arch:              arch.Name,
		Network:           net.Name,
		EnergyJ:           nr.Energy,
		EnergyPerMACpJ:    nr.EnergyPerMAC() * 1e12,
		TOPSPerW:          nr.TOPSPerW(),
		GOPS:              nr.GOPS(),
		AreaMM2:           nr.AreaUm2 / 1e6,
		MACs:              nr.MACs,
		TimeSec:           nr.TimeSec,
		ElapsedSec:        time.Since(started).Seconds(),
		MappingsEvaluated: nr.MappingsEvaluated,
		NetworkResult:     nr,
	}
	sp.SetTag(res.Tag)
	s.met.evaluateSeconds.Observe(time.Since(started).Seconds())
	return res, nil
}

// observeCacheLookup attributes one cache lookup to the span: the
// elapsed wall time minus whatever "compile" time the lookup itself
// accrued (the singleflight winner runs the compute closure inline, and
// its obs.Timed already booked that under "compile") is pure cache
// overhead. Returns the span's new cumulative compile seconds, to seed
// the next call. Nil-span safe.
func observeCacheLookup(sp *obs.Span, start time.Time, compiledBefore float64) float64 {
	compiledNow := sp.Phase("compile")
	d := time.Since(start).Seconds() - (compiledNow - compiledBefore)
	if d > 0 {
		sp.Observe("cache", time.Duration(d*float64(time.Second)))
	}
	return compiledNow
}

func requestTag(r *Request, archName, netName string) string {
	if r.Tag != "" {
		return r.Tag
	}
	t := archName + "/" + netName
	// System-wrapped archs already carry the scenario in their name.
	if r.Scenario != "" && !strings.Contains(archName, r.Scenario) {
		t += "/" + r.Scenario
	}
	return t
}

// Sweep evaluates a batch of requests across the worker pool, streaming
// completions through a channel and returning results in request order.
// Per-request failures land in Result.Err; the sweep itself only fails on
// an empty batch.
func (s *Server) Sweep(reqs []Request) ([]*Result, error) {
	return s.SweepCtx(context.Background(), reqs, s.opts.workers(), nil)
}

// SweepN is Sweep with an explicit worker bound overriding the server's
// (callers like the experiment runner carry their own parallelism knob).
func (s *Server) SweepN(reqs []Request, workers int) ([]*Result, error) {
	return s.SweepCtx(context.Background(), reqs, workers, nil)
}

// SweepCtx is the sweep's full form: a context that stops the feeder —
// once ctx is cancelled no further grid items are dispatched, and
// in-flight evaluations abort through the per-layer search — plus an
// optional onDone callback invoked from the completion path as each item
// finishes (the progress stream the async job API surfaces). Results are
// returned in request order; on cancellation the partial slice is
// returned alongside ctx.Err(), with never-dispatched items left nil.
func (s *Server) SweepCtx(ctx context.Context, reqs []Request, workers int, onDone func(int, *Result)) ([]*Result, error) {
	out, _, err := s.sweepCtx(ctx, reqs, workers, onDone, nil)
	return out, err
}

// sweepCtx is the fan-out engine under SweepCtx and the preemptible
// sweep-job body: an optional yield hook is polled at item boundaries
// (before each evaluation starts), and once it reports true the sweep
// stops dispatching, drains in-flight items, and returns
// preempted=true with the never-evaluated slots left nil. Yield is
// sticky — one true answer stops the whole remaining grid — so a
// preempted job gives the queue back at the earliest safe point.
func (s *Server) sweepCtx(ctx context.Context, reqs []Request, workers int, onDone func(int, *Result), yield func() bool) (_ []*Result, preempted bool, _ error) {
	if len(reqs) == 0 {
		return nil, false, errors.New("serve: empty sweep")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = s.opts.workers()
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var yielded atomic.Bool
	shouldYield := func() bool {
		if yield == nil {
			return false
		}
		if yielded.Load() {
			return true
		}
		if yield() {
			yielded.Store(true)
			return true
		}
		return false
	}
	type indexed struct {
		i   int
		res *Result // nil: skipped because the sweep was cancelled or preempted
	}
	sweepStart := time.Now()
	tenant := tenantFrom(ctx)
	feed := make(chan int)
	done := make(chan indexed)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				if ctx.Err() != nil || shouldYield() {
					done <- indexed{i, nil}
					continue
				}
				// Each grid item gets its own span: the time it sat behind
				// earlier items is its "queue" phase, and EvaluateCtx fills
				// in cache/compile/search below. HTTP requests carry a span
				// already, but one request-level span would smear phase
				// timings across the whole grid; per-item spans are what
				// make a single slow item findable in /v1/debug/slow.
				itemStart := time.Now()
				sp := obs.NewSpan("sweep-item")
				sp.Tenant = tenant
				sp.Observe("queue", itemStart.Sub(sweepStart))
				// EvaluateCtx itself holds one budget token per in-flight
				// evaluation, so the pool and any intra-request fan-out
				// share one global concurrency cap.
				res, err := s.EvaluateCtx(obs.ContextWith(ctx, sp), reqs[i])
				if err != nil {
					if ctx.Err() != nil {
						// Interrupted, not failed: leave the slot empty
						// rather than reporting a context error as a
						// per-request failure.
						done <- indexed{i, nil}
						continue
					}
					res = &Result{Tag: requestTag(&reqs[i], reqs[i].Macro, reqs[i].Network), Err: err.Error()}
					sp.SetTag(res.Tag)
					sp.SetError(res.Err)
				}
				s.finishSpan(sp, time.Since(itemStart))
				done <- indexed{i, res}
			}
		}()
	}
	go func() {
		defer func() {
			close(feed)
			wg.Wait()
			close(done)
		}()
		for i := range reqs {
			if yielded.Load() {
				return // stop dispatching the rest of the grid
			}
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := make([]*Result, len(reqs))
	for d := range done {
		if d.res == nil {
			continue
		}
		out[d.i] = d.res
		if onDone != nil {
			onDone(d.i, d.res)
		}
	}
	if err := ctx.Err(); err != nil {
		return out, false, err
	}
	return out, yielded.Load(), nil
}

// SweepJobOptions tunes one async sweep job.
type SweepJobOptions struct {
	// Workers overrides the server's pool bound for this job (0 keeps it).
	Workers int
	// Timeout is the job's deadline, measured from the moment it starts
	// running (queue time excluded): the job context is wrapped in
	// context.WithTimeout, so expiry aborts in-flight layer searches and
	// the job fails with context.DeadlineExceeded. Zero means no deadline.
	// A preempted-and-resumed batch job gets a fresh window on each
	// dispatch — the deadline bounds continuous occupancy of a runner,
	// not wall-clock lifetime.
	Timeout time.Duration
	// Priority is the job's scheduling class: interactive jobs dispatch
	// before batch jobs (the default), FIFO within a class. Persisted in
	// the write-ahead log, so a replayed job keeps its class.
	Priority jobs.Priority
	// Tenant attributes the job to a tenant for weighted fair queuing
	// and quota accounting ("" = the anonymous tenant). The HTTP layer
	// fills it from the authenticated bearer token.
	Tenant string
}

// sweepLabel names a sweep job.
func sweepLabel(reqs []Request) string {
	return fmt.Sprintf("sweep of %d requests", len(reqs))
}

// secondsToTimeout converts a client-supplied timeout_sec to a duration,
// clamping instead of overflowing: float64 seconds beyond the int64
// nanosecond range would wrap negative (an already-expired deadline), so
// absurdly large requests saturate at ~292 years. Non-positive means no
// deadline.
func secondsToTimeout(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	if sec >= float64(math.MaxInt64)/float64(time.Second) {
		return math.MaxInt64
	}
	return time.Duration(sec * float64(time.Second))
}

// SubmitSweep enqueues a sweep as an async job: the batch fans across
// the worker pool in the background, per-item completions stream into
// the job's progress, and the finished job carries the rendered sweep
// table as its result. Returns jobs.ErrQueueFull when the pending queue
// is saturated (the HTTP layer's 429 + Retry-After).
func (s *Server) SubmitSweep(reqs []Request, workers int) (jobs.Snapshot, error) {
	return s.SubmitSweepOpts(reqs, SweepJobOptions{Workers: workers})
}

// SubmitSweepOpts is SubmitSweep with per-job options (deadline,
// priority, tenant). An accepted job is write-ahead-logged when job
// persistence is enabled, so a restart replays it if it never finished.
// The WAL record is enqueued BEFORE the job becomes runnable (reserved
// ID), so even a job that finishes instantly has its WAL on the
// write-behind queue ahead of its terminal snapshot and WAL retirement —
// the FIFO writer then leaves no stale WAL behind. Batch jobs yield at
// item boundaries when interactive work is waiting (see jobs.Store
// preemption); completed items survive the yield in memory and — when
// persistence is on — as on-disk checkpoints, so neither an in-process
// resume nor a crash-replay repeats finished items.
func (s *Server) SubmitSweepOpts(reqs []Request, opts SweepJobOptions) (jobs.Snapshot, error) {
	if len(reqs) == 0 {
		return jobs.Snapshot{}, errors.New("serve: empty sweep")
	}
	if !opts.Priority.Valid() && opts.Priority != "" {
		return jobs.Snapshot{}, fmt.Errorf("serve: unknown priority %q", opts.Priority)
	}
	// Always reserve the ID up front: the job body needs it to ask the
	// queue "should I yield?" while running.
	id := s.jobs.ReserveID()
	wal := s.persist.jobs != nil && walExpressible(reqs)
	run := s.newSweepRun(id, reqs, opts, wal)
	if wal {
		s.logJobWAL(id, reqs, opts)
		// Durability point: the 202 acknowledgment must mean the WAL is on
		// disk, or a hard crash (kill -9, power loss) right after accepting
		// would lose the job entirely. One fsync round per submission, well
		// off the evaluation hot path.
		s.persist.jobs.Flush()
	}
	snap, err := s.jobs.SubmitJob(jobs.Submission{
		ID:       id,
		Priority: opts.Priority,
		Tenant:   opts.Tenant,
		Label:    sweepLabel(reqs),
		Total:    len(reqs),
		Fn:       run.fn(),
	})
	if err != nil {
		if wal {
			s.retireJobWAL(id) // rejected (queue full / closing): nothing to replay
		}
		return snap, err
	}
	return snap, nil
}

// RetryAfter is the backoff hint paired with jobs.ErrQueueFull.
func (s *Server) RetryAfter() time.Duration { return s.jobs.RetryAfter() }

// Job returns one job's snapshot.
func (s *Server) Job(id string) (jobs.Snapshot, bool) { return s.jobs.Get(id) }

// Jobs snapshots every retained job in submission order.
func (s *Server) Jobs() []jobs.Snapshot { return s.jobs.List() }

// JobsPage is Jobs under a status filter and a monotonic-ID cursor (the
// GET /v1/jobs pagination).
func (s *Server) JobsPage(q jobs.ListQuery) ([]jobs.Snapshot, string) { return s.jobs.ListPage(q) }

// AwaitJob blocks until the job's version exceeds afterVersion (or the
// job is terminal, or ctx expires) and returns the fresh snapshot — the
// seam under the SSE stream and the long-poll job GET.
func (s *Server) AwaitJob(ctx context.Context, id string, afterVersion int64) (jobs.Snapshot, error) {
	return s.jobs.Await(ctx, id, afterVersion)
}

// CancelJob requests cancellation of one job (idempotent; false only for
// unknown IDs). Cancellation propagates through the job's context into
// the per-layer mapping search, stopping in-flight work.
func (s *Server) CancelJob(id string) (jobs.Snapshot, bool) { return s.jobs.Cancel(id) }

// WaitJob blocks until the job reaches a terminal state or ctx expires.
func (s *Server) WaitJob(ctx context.Context, id string) (jobs.Snapshot, error) {
	return s.jobs.Wait(ctx, id)
}

// Grid builds the cross product of macros x networks x scenarios as a
// request batch. An empty scenario list means bare macros; layers and
// maxMappings apply to every request (0 keeps defaults).
func Grid(macroNames, networks, scenarios []string, layers, maxMappings int) []Request {
	if len(scenarios) == 0 {
		scenarios = []string{""}
	}
	var reqs []Request
	for _, m := range macroNames {
		for _, n := range networks {
			for _, sc := range scenarios {
				reqs = append(reqs, Request{
					Macro: m, Network: n, Scenario: sc,
					Layers: layers, MaxMappings: maxMappings,
				})
			}
		}
	}
	return reqs
}

// SweepTable aggregates sweep results into a report table, one row per
// request, mirroring the metric set of `cimloop spec`.
func SweepTable(results []*Result) *report.Table {
	t := report.NewTable("Batch sweep",
		"request", "energy (J)", "energy/MAC (pJ)", "TOPS/W", "GOPS", "area (mm^2)", "status")
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Err != "" {
			t.AddRow(r.Tag, "-", "-", "-", "-", "-", r.Err)
			continue
		}
		t.AddRow(r.Tag, report.Num(r.EnergyJ), report.Num(r.EnergyPerMACpJ),
			report.Num(r.TOPSPerW), report.Num(r.GOPS), report.Num(r.AreaMM2), "ok")
	}
	return t
}
