// Package serve is the concurrent batch-evaluation service: a bounded
// worker pool that fans evaluation requests (macro x network x system
// scenario grids) across goroutines, backed by a content-addressed LRU
// cache of compiled engines and per-layer contexts so amortized state is
// shared across requests instead of recompiled per call.
//
// The paper's speed claim rests on computing per-layer action energies
// once and reusing them across thousands of mappings; serve extends that
// amortization across requests: many clients sweeping the same macros and
// networks share cached state, and a warm sweep pays only the per-mapping
// count analysis.
//
// Use it directly:
//
//	srv := serve.NewServer(serve.BatchOptions{Workers: 8})
//	results, _ := srv.Sweep(serve.Grid([]string{"macro-a", "macro-b"},
//	    []string{"resnet18"}, nil, 0, 0))
//	fmt.Println(serve.SweepTable(results).String())
//
// or over HTTP via Server.Handler (see http.go and `cimloop serve`).
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/specfile"
	"repro/internal/system"
	"repro/internal/workload"
)

// BatchOptions tunes the service. The zero value is usable: one worker
// per CPU, the default mapping budget, and the default cache bound.
type BatchOptions struct {
	// Workers bounds the evaluation goroutines (default: NumCPU).
	Workers int
	// MaxMappings is the default per-layer mapping search budget for
	// requests that do not set their own (default 60, matching the
	// experiment runner).
	MaxMappings int
	// CacheEntries bounds the engine/context LRU (default
	// DefaultCacheEntries).
	CacheEntries int
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o BatchOptions) mappings() int {
	if o.MaxMappings > 0 {
		return o.MaxMappings
	}
	return 60
}

// Server owns the shared cache and worker bound. It is safe for
// concurrent use; one Server is meant to outlive many requests.
type Server struct {
	opts  BatchOptions
	cache *Cache
	start time.Time

	// ExperimentNames and RunExperiment are injected by the facade so the
	// HTTP API can list and run paper reproductions without this package
	// importing the experiments package (which itself routes sweeps
	// through serve).
	ExperimentNames func() []string
	RunExperiment   func(name string, fast bool, maxMappings int, seed int64) ([]*report.Table, error)
}

// NewServer constructs a service with its own cache.
func NewServer(opts BatchOptions) *Server {
	return &Server{
		opts:  opts,
		cache: NewCache(opts.CacheEntries),
		start: time.Now(),
	}
}

// CacheStats snapshots the shared cache counters.
func (s *Server) CacheStats() Stats { return s.cache.Stats() }

// Request describes one evaluation: an architecture source, an optional
// full-system wrap, and a workload. Exactly one of Macro, Spec, or Arch
// must be set, and exactly one of Network or Net.
type Request struct {
	// Tag labels the result row; defaults to "arch/network[/scenario]".
	Tag string `json:"tag,omitempty"`

	// Macro names a published macro model ("base", "macro-a", ...,
	// "digital-cim").
	Macro string `json:"macro,omitempty"`
	// Spec is a textual container-hierarchy specification.
	Spec string `json:"spec,omitempty"`
	// Arch is a prebuilt architecture (programmatic callers only).
	Arch *core.Arch `json:"-"`

	// Scenario optionally wraps the macro into a full system:
	// "all-tensors-from-dram", "weight-stationary", or
	// "weight-stationary+onchip-io".
	Scenario string `json:"scenario,omitempty"`
	// SystemMacros is the parallel macro count for the system wrap
	// (default 1; ignored without Scenario).
	SystemMacros int `json:"system_macros,omitempty"`

	// Network names a model-zoo workload ("resnet18", "vit-base", ...).
	Network string `json:"network,omitempty"`
	// Net is a prebuilt workload (programmatic callers only).
	Net *workload.Network `json:"-"`
	// Layers caps the evaluated layer count (0 = all).
	Layers int `json:"layers,omitempty"`

	// MaxMappings overrides the server's per-layer mapping budget.
	MaxMappings int `json:"max_mappings,omitempty"`
	// Seed drives the mapping search (layer i uses Seed+i, matching the
	// sequential evaluator).
	Seed int64 `json:"seed,omitempty"`
}

// Result is one completed evaluation, JSON-ready for the HTTP API. Err is
// set instead of the metrics when the request failed; a sweep always
// yields one Result per Request, in request order.
type Result struct {
	Tag     string `json:"tag"`
	Arch    string `json:"arch,omitempty"`
	Network string `json:"network,omitempty"`
	Err     string `json:"error,omitempty"`

	EnergyJ        float64 `json:"energy_j,omitempty"`
	EnergyPerMACpJ float64 `json:"energy_per_mac_pj,omitempty"`
	TOPSPerW       float64 `json:"tops_per_w,omitempty"`
	GOPS           float64 `json:"gops,omitempty"`
	AreaMM2        float64 `json:"area_mm2,omitempty"`
	MACs           int64   `json:"macs,omitempty"`
	TimeSec        float64 `json:"time_sec,omitempty"`
	ElapsedSec     float64 `json:"elapsed_sec,omitempty"`

	// NetworkResult carries the full per-layer breakdown for programmatic
	// callers (experiments); it is not serialized.
	NetworkResult *core.NetworkResult `json:"-"`
}

// resolveArch materializes the request's architecture, applying the
// optional full-system wrap.
func (r *Request) resolveArch() (*core.Arch, error) {
	sources := 0
	for _, set := range []bool{r.Macro != "", r.Spec != "", r.Arch != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, errors.New("serve: request needs exactly one of macro, spec, or arch")
	}
	var arch *core.Arch
	var err error
	switch {
	case r.Arch != nil:
		arch = r.Arch
	case r.Macro != "":
		arch, err = macros.ByName(r.Macro)
	default:
		arch, err = specfile.Parse(r.Spec)
	}
	if err != nil {
		return nil, err
	}
	if r.Scenario == "" {
		return arch, nil
	}
	sc, err := scenarioByName(r.Scenario)
	if err != nil {
		return nil, err
	}
	n := r.SystemMacros
	if n <= 0 {
		n = 1
	}
	return system.Build(arch, sc, system.Config{Macros: n})
}

// scenarioByName parses the Fig. 15 scenario names as Scenario.String
// prints them.
func scenarioByName(name string) (system.Scenario, error) {
	for _, sc := range []system.Scenario{system.AllDRAM, system.WeightStationary, system.OnChipIO} {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown scenario %q (have %q, %q, %q)", name,
		system.AllDRAM, system.WeightStationary, system.OnChipIO)
}

// resolveNet materializes the request's workload.
func (r *Request) resolveNet() (*workload.Network, error) {
	if (r.Network != "") == (r.Net != nil) {
		return nil, errors.New("serve: request needs exactly one of network name or prebuilt net")
	}
	net := r.Net
	if r.Network != "" {
		var err error
		net, err = workload.ByName(r.Network)
		if err != nil {
			return nil, err
		}
	}
	if r.Layers > 0 && r.Layers < len(net.Layers) {
		cp := *net
		cp.Layers = net.Layers[:r.Layers]
		net = &cp
	}
	return net, nil
}

// Evaluate runs one request through the cache: the engine and every layer
// context are fetched (or compiled once) from the content-addressed
// cache, and only the per-mapping count analysis runs unconditionally.
func (s *Server) Evaluate(req Request) (*Result, error) {
	started := time.Now()
	arch, err := req.resolveArch()
	if err != nil {
		return nil, err
	}
	net, err := req.resolveNet()
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	eng, err := s.cache.Engine(arch)
	if err != nil {
		return nil, err
	}
	mappings := req.MaxMappings
	if mappings <= 0 {
		mappings = s.opts.mappings()
	}
	// Mirror core.Engine.EvaluateNetwork, but fetch each layer's
	// amortized context through the cache instead of re-preparing it.
	nr := &core.NetworkResult{Arch: eng.Arch().Name, Network: net.Name, AreaUm2: eng.Area()}
	for i, l := range net.Layers {
		ctx, err := s.cache.LayerContext(eng, l)
		if err != nil {
			return nil, fmt.Errorf("serve: network %q layer %q: %w", net.Name, l.Name, err)
		}
		r, _, err := eng.SearchLayer(ctx, mappings, req.Seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("serve: network %q layer %q: %w", net.Name, l.Name, err)
		}
		nr.PerLayer = append(nr.PerLayer, r)
		rep := float64(l.Repeat)
		nr.Energy += r.Energy * rep
		nr.TimeSec += r.TimeSec * rep
		nr.MACs += r.MACs * int64(l.Repeat)
	}
	res := &Result{
		Tag:            req.tag(arch.Name, net.Name),
		Arch:           arch.Name,
		Network:        net.Name,
		EnergyJ:        nr.Energy,
		EnergyPerMACpJ: nr.EnergyPerMAC() * 1e12,
		TOPSPerW:       nr.TOPSPerW(),
		GOPS:           nr.GOPS(),
		AreaMM2:        nr.AreaUm2 / 1e6,
		MACs:           nr.MACs,
		TimeSec:        nr.TimeSec,
		ElapsedSec:     time.Since(started).Seconds(),
		NetworkResult:  nr,
	}
	return res, nil
}

func (r *Request) tag(archName, netName string) string {
	if r.Tag != "" {
		return r.Tag
	}
	t := archName + "/" + netName
	// System-wrapped archs already carry the scenario in their name.
	if r.Scenario != "" && !strings.Contains(archName, r.Scenario) {
		t += "/" + r.Scenario
	}
	return t
}

// Sweep evaluates a batch of requests across the worker pool, streaming
// completions through a channel and returning results in request order.
// Per-request failures land in Result.Err; the sweep itself only fails on
// an empty batch.
func (s *Server) Sweep(reqs []Request) ([]*Result, error) {
	return s.SweepN(reqs, s.opts.workers())
}

// SweepN is Sweep with an explicit worker bound overriding the server's
// (callers like the experiment runner carry their own parallelism knob).
func (s *Server) SweepN(reqs []Request, workers int) ([]*Result, error) {
	if len(reqs) == 0 {
		return nil, errors.New("serve: empty sweep")
	}
	if workers <= 0 {
		workers = s.opts.workers()
	}
	type indexed struct {
		i   int
		res *Result
	}
	jobs := make(chan int)
	done := make(chan indexed)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := s.Evaluate(reqs[i])
				if err != nil {
					res = &Result{Tag: reqs[i].tag(reqs[i].Macro, reqs[i].Network), Err: err.Error()}
				}
				done <- indexed{i, res}
			}
		}()
	}
	go func() {
		for i := range reqs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(done)
	}()
	out := make([]*Result, len(reqs))
	for d := range done {
		out[d.i] = d.res
	}
	return out, nil
}

// Grid builds the cross product of macros x networks x scenarios as a
// request batch. An empty scenario list means bare macros; layers and
// maxMappings apply to every request (0 keeps defaults).
func Grid(macroNames, networks, scenarios []string, layers, maxMappings int) []Request {
	if len(scenarios) == 0 {
		scenarios = []string{""}
	}
	var reqs []Request
	for _, m := range macroNames {
		for _, n := range networks {
			for _, sc := range scenarios {
				reqs = append(reqs, Request{
					Macro: m, Network: n, Scenario: sc,
					Layers: layers, MaxMappings: maxMappings,
				})
			}
		}
	}
	return reqs
}

// SweepTable aggregates sweep results into a report table, one row per
// request, mirroring the metric set of `cimloop spec`.
func SweepTable(results []*Result) *report.Table {
	t := report.NewTable("Batch sweep",
		"request", "energy (J)", "energy/MAC (pJ)", "TOPS/W", "GOPS", "area (mm^2)", "status")
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.Err != "" {
			t.AddRow(r.Tag, "-", "-", "-", "-", "-", r.Err)
			continue
		}
		t.AddRow(r.Tag, report.Num(r.EnergyJ), report.Num(r.EnergyPerMACpJ),
			report.Num(r.TOPSPerW), report.Num(r.GOPS), report.Num(r.AreaMM2), "ok")
	}
	return t
}
