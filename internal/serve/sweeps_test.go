package serve

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/sweepdef"
)

const testDefDoc = `name: unit-smoke
description: tiny grid for handler tests
priority: interactive
params:
  - name: mappings
    type: int
    default: 2
    min: 1
    max: 10
axes:
  macros: [base]
  networks: [toy]
budgets:
  max_mappings: "{mappings}"
`

func testSweepSet(t *testing.T) *sweepdef.Set {
	t.Helper()
	def, err := sweepdef.Parse("unit-smoke.yaml", testDefDoc)
	if err != nil {
		t.Fatal(err)
	}
	set, err := sweepdef.NewSet([]*sweepdef.Definition{def})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNamedExperimentRoundTrip(t *testing.T) {
	srv := NewServer(BatchOptions{SweepDefs: testSweepSet(t)})
	defer srv.Close()
	_, do := testClient(t, srv)

	// Listing surfaces the definition with its parameter schema even when
	// no built-in experiment runner is wired.
	status, out := do("GET", "/v1/experiments", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d %v", status, out)
	}
	defs, ok := out["definitions"].([]any)
	if !ok || len(defs) != 1 {
		t.Fatalf("definitions = %v", out["definitions"])
	}
	info := defs[0].(map[string]any)
	if info["name"] != "unit-smoke" || info["source"] != "sweep" || info["requests"] != float64(1) {
		t.Fatalf("listing entry = %v", info)
	}
	if params, ok := info["params"].([]any); !ok || len(params) != 1 {
		t.Fatalf("parameter schema missing: %v", info["params"])
	}

	// An empty body runs the definition at its defaults.
	status, out = do("POST", "/v1/experiments/unit-smoke", "")
	if status != http.StatusOK {
		t.Fatalf("run at defaults: %d %v", status, out)
	}
	if results, ok := out["results"].([]any); !ok || len(results) != 1 {
		t.Fatalf("results = %v", out["results"])
	}
	if table, _ := out["table"].(string); !strings.Contains(table, "base") {
		t.Fatalf("table missing evaluated row: %q", out["table"])
	}

	// Parameter binding flows through to the compiled grid.
	status, out = do("POST", "/v1/experiments/unit-smoke", `{"params": {"mappings": 3}}`)
	if status != http.StatusOK {
		t.Fatalf("run bound: %d %v", status, out)
	}
}

func TestNamedExperimentErrors(t *testing.T) {
	srv := NewServer(BatchOptions{SweepDefs: testSweepSet(t)})
	defer srv.Close()
	srv.ExperimentNames = func() []string { return []string{"table-iii"} }
	_, do := testClient(t, srv)

	// Unknown name: 404 with the envelope.
	status, out := do("POST", "/v1/experiments/no-such", "")
	if code, _ := envelope(t, out); status != http.StatusNotFound || code != "not_found" {
		t.Fatalf("unknown: %d %v", status, out)
	}
	// A built-in experiment name is redirected, not silently shadowed.
	status, out = do("POST", "/v1/experiments/table-iii", "")
	if code, msg := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" || !strings.Contains(msg, "built-in") {
		t.Fatalf("builtin: %d %v", status, out)
	}
	// Out-of-range parameter: compile rejects, 400.
	status, out = do("POST", "/v1/experiments/unit-smoke", `{"params": {"mappings": 99}}`)
	if code, msg := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" || !strings.Contains(msg, "mappings") {
		t.Fatalf("range: %d %v", status, out)
	}
	// Undeclared parameter: bind rejects, 400.
	status, out = do("POST", "/v1/experiments/unit-smoke", `{"params": {"bogus": 1}}`)
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("undeclared: %d %v", status, out)
	}
	// Invalid priority class.
	status, out = do("POST", "/v1/experiments/unit-smoke", `{"priority": "urgent"}`)
	if code, _ := envelope(t, out); status != http.StatusBadRequest || code != "invalid_request" {
		t.Fatalf("priority: %d %v", status, out)
	}
}

func TestNamedExperimentAsyncUsesDefinitionPriority(t *testing.T) {
	srv := NewServer(BatchOptions{SweepDefs: testSweepSet(t)})
	defer srv.Close()
	_, do := testClient(t, srv)

	status, out := do("POST", "/v1/experiments/unit-smoke", `{"async": true}`)
	if status != http.StatusAccepted {
		t.Fatalf("async: %d %v", status, out)
	}
	job, ok := out["job"].(map[string]any)
	if !ok {
		t.Fatalf("no job in 202 body: %v", out)
	}
	// The definition declares priority: interactive; with no override in
	// the request, the job inherits it.
	if job["priority"] != "interactive" {
		t.Fatalf("job priority = %v, want the definition's interactive", job["priority"])
	}
}

func TestReloadSweepDefsKeepsOldSetOnError(t *testing.T) {
	srv := NewServer(BatchOptions{SweepDefs: testSweepSet(t)})
	defer srv.Close()

	// An empty set is refused and the old set stays live.
	empty, err := sweepdef.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ReloadSweepDefs(empty); err == nil {
		t.Fatal("empty reload succeeded, want error")
	}
	if names := srv.SweepDefNames(); len(names) != 1 || names[0] != "unit-smoke" {
		t.Fatalf("names after failed reload = %v", names)
	}

	// A definition shadowing a built-in experiment name is refused.
	srv.ExperimentNames = func() []string { return []string{"unit-smoke"} }
	if err := srv.ReloadSweepDefs(testSweepSet(t)); err == nil || !strings.Contains(err.Error(), "shadows") {
		t.Fatalf("shadowing reload error = %v", err)
	}

	// Both refusals are counted as reload errors in /healthz (boot
	// registration via BatchOptions bypasses the counter).
	stats := srv.ObsStats()
	if stats.SweepReloadErrors != 2 {
		t.Fatalf("SweepReloadErrors = %d, want 2", stats.SweepReloadErrors)
	}
}
