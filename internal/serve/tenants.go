package serve

import (
	"crypto/subtle"
	"fmt"
	"os"

	"repro/internal/serve/jobs"
	"repro/internal/yamlite"
)

// TenantConfig is one tenant of a multi-tenant server: the bearer token
// that authenticates it, its weighted-fair-queuing weight, and its
// pending-job quota.
type TenantConfig struct {
	// ID names the tenant; it is threaded onto job snapshots, WAL
	// records, and healthz queue stats. IDs are unique within a file.
	ID string
	// Token is the shared-secret bearer token. Tokens are unique within
	// a file (a token must map to exactly one tenant).
	Token string
	// Weight is the tenant's WFQ share (> 0; 1 if omitted). A tenant
	// with weight 2 dispatches twice as often as a tenant with weight 1
	// when both have work queued.
	Weight float64
	// MaxPending caps the tenant's queued-or-running jobs; submissions
	// beyond it get a per-tenant 429. 0 means no per-tenant cap.
	MaxPending int
}

// Tenants is a parsed tenant file. A nil *Tenants means "tenancy off":
// no auth required, every job runs under the anonymous tenant.
type Tenants struct {
	list []TenantConfig
	byID map[string]*TenantConfig
}

// Enabled reports whether tenancy (and therefore auth) is on.
func (t *Tenants) Enabled() bool { return t != nil && len(t.list) > 0 }

// Lookup resolves a bearer token to its tenant. It compares the token
// against every configured entry in constant time — no early exit — so
// response timing does not leak which prefix of a guessed token matched.
func (t *Tenants) Lookup(token string) (*TenantConfig, bool) {
	if !t.Enabled() {
		return nil, false
	}
	var found *TenantConfig
	for i := range t.list {
		tc := &t.list[i]
		if subtle.ConstantTimeCompare([]byte(tc.Token), []byte(token)) == 1 {
			found = tc
		}
	}
	return found, found != nil
}

// Get returns the tenant with the given ID.
func (t *Tenants) Get(id string) (*TenantConfig, bool) {
	if !t.Enabled() {
		return nil, false
	}
	tc, ok := t.byID[id]
	return tc, ok
}

// IDs lists the configured tenant IDs in file order.
func (t *Tenants) IDs() []string {
	if !t.Enabled() {
		return nil
	}
	ids := make([]string, len(t.list))
	for i := range t.list {
		ids[i] = t.list[i].ID
	}
	return ids
}

// JobTenants converts the file into the queue's per-tenant scheduling
// table (jobs.Options.Tenants). Nil when tenancy is off.
func (t *Tenants) JobTenants() map[string]jobs.Tenant {
	if !t.Enabled() {
		return nil
	}
	m := make(map[string]jobs.Tenant, len(t.list))
	for i := range t.list {
		tc := &t.list[i]
		m[tc.ID] = jobs.Tenant{Weight: tc.Weight, MaxPending: tc.MaxPending}
	}
	return m
}

// ParseTenants decodes a tenant file:
//
//	tenants:
//	  - id: team-a
//	    token: secret-a
//	    weight: 2
//	    max_pending: 8
//	  - id: team-b
//	    token: secret-b
//
// Every entry needs an id and a token; weight defaults to 1 and must be
// positive when given; max_pending defaults to 0 (uncapped). IDs and
// tokens must each be unique across the file.
func ParseTenants(text string) (*Tenants, error) {
	doc, err := yamlite.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	root, ok := doc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("tenants: top level must be a mapping with a 'tenants' key")
	}
	rawList, ok := root["tenants"].([]any)
	if !ok {
		return nil, fmt.Errorf("tenants: missing or non-list 'tenants' key")
	}
	if len(rawList) == 0 {
		return nil, fmt.Errorf("tenants: 'tenants' list is empty")
	}
	t := &Tenants{byID: make(map[string]*TenantConfig, len(rawList))}
	seenID := make(map[string]bool, len(rawList))
	seenToken := make(map[string]bool, len(rawList))
	for n, raw := range rawList {
		entry, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("tenants: entry %d is not a mapping", n+1)
		}
		tc := TenantConfig{Weight: 1}
		for key, v := range entry {
			switch key {
			case "id":
				tc.ID, ok = v.(string)
				if !ok || tc.ID == "" {
					return nil, fmt.Errorf("tenants: entry %d: 'id' must be a non-empty string", n+1)
				}
			case "token":
				tc.Token, ok = v.(string)
				if !ok || tc.Token == "" {
					return nil, fmt.Errorf("tenants: entry %d: 'token' must be a non-empty string", n+1)
				}
			case "weight":
				w, ok := v.(float64)
				if !ok || w <= 0 {
					return nil, fmt.Errorf("tenants: entry %d: 'weight' must be a positive number", n+1)
				}
				tc.Weight = w
			case "max_pending":
				mp, ok := v.(float64)
				if !ok || mp != float64(int(mp)) || mp < 0 {
					return nil, fmt.Errorf("tenants: entry %d: 'max_pending' must be a non-negative integer", n+1)
				}
				tc.MaxPending = int(mp)
			default:
				return nil, fmt.Errorf("tenants: entry %d: unknown key %q", n+1, key)
			}
		}
		if tc.ID == "" {
			return nil, fmt.Errorf("tenants: entry %d has no 'id'", n+1)
		}
		if tc.Token == "" {
			return nil, fmt.Errorf("tenants: entry %d (%s) has no 'token'", n+1, tc.ID)
		}
		if seenID[tc.ID] {
			return nil, fmt.Errorf("tenants: duplicate tenant id %q", tc.ID)
		}
		seenID[tc.ID] = true
		if seenToken[tc.Token] {
			return nil, fmt.Errorf("tenants: tenant %q reuses another tenant's token", tc.ID)
		}
		seenToken[tc.Token] = true
		t.list = append(t.list, tc)
	}
	for i := range t.list {
		t.byID[t.list[i].ID] = &t.list[i]
	}
	return t, nil
}

// LoadTenantsFile reads and parses a tenant file from disk.
func LoadTenantsFile(path string) (*Tenants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	return ParseTenants(string(data))
}
