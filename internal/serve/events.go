package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/serve/api"
)

// Server-push job progress: GET /v1/jobs/{id}/events streams the job's
// observable mutations as Server-Sent Events, built directly on the job
// store's version-cursor Await. Each frame's SSE id is the job version,
// so a client that reconnects with Last-Event-ID resumes exactly where
// its connection dropped — the stream is state-synchronizing (each event
// carries a full snapshot), so "resume" means "send me anything newer
// than version N", never a replayed backlog. The stream ends after the
// terminal event; a job already terminal yields that single event.

// handleJobEvents serves the SSE stream.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cursor, ok := sseCursor(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeAPIError(w, http.StatusInternalServerError,
			api.Errorf(api.CodeInternal, "response writer cannot stream"))
		return
	}
	// The 404 must beat the stream headers: check existence (under tenant
	// scoping) before committing to text/event-stream.
	if _, exists := s.jobForTenant(r, id); !exists {
		writeJobNotFound(w, id)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	for {
		snap, err := s.jobs.Await(ctx, id, cursor)
		if err != nil {
			// Client gone, server shutting down, or the job was evicted by
			// retention mid-stream. The stream has no in-band error channel
			// once committed; end it and let the client's resume logic (or
			// its GET fallback) observe the condition.
			return
		}
		ev := api.JobEvent{Type: api.JobEventProgress, Job: snap}
		if snap.Done() {
			ev.Type = api.JobEventTerminal
		}
		if err := writeSSE(w, snap.Version, ev); err != nil {
			return
		}
		flusher.Flush()
		if snap.Done() {
			return
		}
		cursor = snap.Version
	}
}

// sseCursor extracts the resume cursor: the standard Last-Event-ID
// header (set automatically by EventSource reconnects), with a
// ?last_event_id= query fallback for clients that cannot set headers.
// Absent means 0 — "send me the current state first".
func sseCursor(w http.ResponseWriter, r *http.Request) (int64, bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0, true
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n < 0 {
		writeAPIError(w, http.StatusBadRequest,
			api.Errorf(api.CodeInvalidRequest, "Last-Event-ID must be a non-negative integer, got %q", raw))
		return 0, false
	}
	return n, true
}

// writeSSE frames one event. The data payload is a single JSON object
// (api.JobEvent), so it never contains a bare newline that would need
// multi-line data: framing.
func writeSSE(w http.ResponseWriter, id int64, ev api.JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, ev.Type, data)
	return err
}
