// Package tech models CMOS technology scaling in the style of the
// Stillmaker–Baas scaling equations the paper's Library plug-in uses
// (paper ref [58]): each node carries relative dynamic-energy, area, and
// delay factors plus a nominal supply voltage. Component models are
// calibrated at a reference node and scaled to the target node, and supply
// voltage sweeps (Fig. 7) scale energy as V² and frequency with an
// alpha-power-law delay model.
package tech

import (
	"fmt"
	"math"
	"sort"
)

// Node describes one technology node. Energy, Area, and Delay are relative
// factors normalized to the 65 nm node.
type Node struct {
	Nm     int     // feature size in nanometers
	Vdd    float64 // nominal supply voltage in volts
	Energy float64 // dynamic energy factor (relative to 65 nm)
	Area   float64 // area factor (relative to 65 nm)
	Delay  float64 // gate delay factor (relative to 65 nm)
}

// nodes lists supported nodes, finest first. Factors follow the published
// general-purpose scaling trends of Stillmaker & Baas (2017).
var nodes = []Node{
	{Nm: 7, Vdd: 0.70, Energy: 0.080, Area: 0.025, Delay: 0.30},
	{Nm: 10, Vdd: 0.75, Energy: 0.12, Area: 0.040, Delay: 0.35},
	{Nm: 14, Vdd: 0.80, Energy: 0.17, Area: 0.065, Delay: 0.40},
	{Nm: 16, Vdd: 0.80, Energy: 0.20, Area: 0.080, Delay: 0.42},
	{Nm: 22, Vdd: 0.85, Energy: 0.28, Area: 0.14, Delay: 0.52},
	{Nm: 32, Vdd: 0.95, Energy: 0.42, Area: 0.28, Delay: 0.65},
	{Nm: 45, Vdd: 1.00, Energy: 0.60, Area: 0.50, Delay: 0.80},
	{Nm: 65, Vdd: 1.10, Energy: 1.00, Area: 1.00, Delay: 1.00},
	{Nm: 90, Vdd: 1.20, Energy: 1.90, Area: 2.00, Delay: 1.50},
	{Nm: 130, Vdd: 1.30, Energy: 3.40, Area: 4.00, Delay: 2.20},
	{Nm: 180, Vdd: 1.80, Energy: 6.00, Area: 7.50, Delay: 3.00},
}

// ByNm returns the node with the given feature size.
func ByNm(nm int) (Node, error) {
	for _, n := range nodes {
		if n.Nm == nm {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unsupported node %d nm (supported: %v)", nm, SupportedNm())
}

// SupportedNm lists the supported node sizes in increasing order.
func SupportedNm() []int {
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = n.Nm
	}
	sort.Ints(out)
	return out
}

// ScaleEnergy converts an energy calibrated at node from to node to.
func ScaleEnergy(e float64, from, to Node) float64 {
	return e * to.Energy / from.Energy
}

// ScaleArea converts an area calibrated at node from to node to.
func ScaleArea(a float64, from, to Node) float64 {
	return a * to.Area / from.Area
}

// ScaleDelay converts a delay calibrated at node from to node to.
func ScaleDelay(d float64, from, to Node) float64 {
	return d * to.Delay / from.Delay
}

// thresholdVoltage is the effective transistor threshold used by the
// alpha-power-law delay model, as a fraction of nominal Vdd.
const thresholdFraction = 0.35

// alphaPower is the velocity-saturation exponent of the delay model.
const alphaPower = 1.3

// EnergyAtVoltage scales a dynamic energy from the node's nominal supply
// to voltage v (E ∝ V²). v must be positive.
func (n Node) EnergyAtVoltage(e, v float64) (float64, error) {
	if v <= 0 {
		return 0, fmt.Errorf("tech: supply voltage %g must be positive", v)
	}
	r := v / n.Vdd
	return e * r * r, nil
}

// FrequencyAtVoltage returns the relative operating frequency at supply v,
// normalized to 1.0 at the node's nominal Vdd, using the alpha-power law
// f ∝ (V - Vt)^α / V. Voltages at or below threshold are an error.
func (n Node) FrequencyAtVoltage(v float64) (float64, error) {
	vt := thresholdFraction * n.Vdd
	if v <= vt {
		return 0, fmt.Errorf("tech: supply voltage %gV at or below threshold %.3gV for %dnm", v, vt, n.Nm)
	}
	f := math.Pow(v-vt, alphaPower) / v
	fNom := math.Pow(n.Vdd-vt, alphaPower) / n.Vdd
	return f / fNom, nil
}

// VoltageRange returns a reasonable sweepable supply range for the node:
// from just above threshold to 25% above nominal.
func (n Node) VoltageRange() (lo, hi float64) {
	return thresholdFraction*n.Vdd + 0.1, 1.25 * n.Vdd
}
