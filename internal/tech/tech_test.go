package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByNm(t *testing.T) {
	n, err := ByNm(65)
	if err != nil {
		t.Fatal(err)
	}
	if n.Energy != 1 || n.Area != 1 || n.Delay != 1 {
		t.Fatalf("65nm must be the normalization point: %+v", n)
	}
	if _, err := ByNm(3); err == nil {
		t.Fatal("want error for unsupported node")
	}
}

func TestSupportedNmSortedAndMonotonic(t *testing.T) {
	nms := SupportedNm()
	if len(nms) < 8 {
		t.Fatalf("too few nodes: %v", nms)
	}
	var prev Node
	for i, nm := range nms {
		n, err := ByNm(nm)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if nm <= nms[i-1] {
				t.Fatalf("nodes not sorted: %v", nms)
			}
			// Coarser nodes must cost more energy, area, delay, voltage.
			if n.Energy <= prev.Energy || n.Area <= prev.Area || n.Delay <= prev.Delay || n.Vdd < prev.Vdd {
				t.Fatalf("scaling not monotonic between %dnm and %dnm", nms[i-1], nm)
			}
		}
		prev = n
	}
}

func TestScaleEnergyRoundTrip(t *testing.T) {
	from, _ := ByNm(65)
	to, _ := ByNm(7)
	e := 100.0
	down := ScaleEnergy(e, from, to)
	if down >= e {
		t.Fatalf("scaling 65->7nm should reduce energy, got %g", down)
	}
	back := ScaleEnergy(down, to, from)
	if math.Abs(back-e) > 1e-9 {
		t.Fatalf("round trip = %g, want %g", back, e)
	}
	a := ScaleArea(50, from, to)
	if a >= 50 {
		t.Fatalf("area should shrink, got %g", a)
	}
	d := ScaleDelay(10, from, to)
	if d >= 10 {
		t.Fatalf("delay should shrink, got %g", d)
	}
}

func TestEnergyAtVoltage(t *testing.T) {
	n, _ := ByNm(22)
	e, err := n.EnergyAtVoltage(100, n.Vdd)
	if err != nil || math.Abs(e-100) > 1e-9 {
		t.Fatalf("nominal voltage should not change energy: %g, %v", e, err)
	}
	half, err := n.EnergyAtVoltage(100, n.Vdd/2)
	if err != nil || math.Abs(half-25) > 1e-9 {
		t.Fatalf("half voltage should quarter energy: %g, %v", half, err)
	}
	if _, err := n.EnergyAtVoltage(100, 0); err == nil {
		t.Fatal("want error for zero voltage")
	}
	if _, err := n.EnergyAtVoltage(100, -1); err == nil {
		t.Fatal("want error for negative voltage")
	}
}

func TestFrequencyAtVoltage(t *testing.T) {
	n, _ := ByNm(65)
	f, err := n.FrequencyAtVoltage(n.Vdd)
	if err != nil || math.Abs(f-1) > 1e-9 {
		t.Fatalf("nominal frequency should be 1: %g, %v", f, err)
	}
	higher, err := n.FrequencyAtVoltage(n.Vdd * 1.2)
	if err != nil || higher <= 1 {
		t.Fatalf("overdrive should speed up: %g, %v", higher, err)
	}
	lower, err := n.FrequencyAtVoltage(n.Vdd * 0.8)
	if err != nil || lower >= 1 {
		t.Fatalf("underdrive should slow down: %g, %v", lower, err)
	}
	if _, err := n.FrequencyAtVoltage(0.1); err == nil {
		t.Fatal("want error below threshold")
	}
}

func TestVoltageRange(t *testing.T) {
	n, _ := ByNm(22)
	lo, hi := n.VoltageRange()
	if lo >= hi {
		t.Fatalf("range inverted: [%g, %g]", lo, hi)
	}
	if _, err := n.FrequencyAtVoltage(lo); err != nil {
		t.Fatalf("low end of range must be operable: %v", err)
	}
	if _, err := n.FrequencyAtVoltage(hi); err != nil {
		t.Fatalf("high end of range must be operable: %v", err)
	}
}

// Property: frequency is strictly increasing in voltage above threshold.
func TestQuickFrequencyMonotonic(t *testing.T) {
	n, _ := ByNm(45)
	lo, hi := n.VoltageRange()
	f := func(a, b float64) bool {
		va := lo + math.Mod(math.Abs(a), hi-lo)
		vb := lo + math.Mod(math.Abs(b), hi-lo)
		if va > vb {
			va, vb = vb, va
		}
		if vb-va < 1e-6 {
			return true
		}
		fa, err1 := n.FrequencyAtVoltage(va)
		fb, err2 := n.FrequencyAtVoltage(vb)
		return err1 == nil && err2 == nil && fa < fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: energy-voltage scaling is exactly quadratic.
func TestQuickEnergyQuadratic(t *testing.T) {
	n, _ := ByNm(7)
	f := func(raw float64) bool {
		v := 0.2 + math.Mod(math.Abs(raw), 1.0)
		e1, err1 := n.EnergyAtVoltage(1, v)
		e2, err2 := n.EnergyAtVoltage(1, 2*v)
		return err1 == nil && err2 == nil && math.Abs(e2-4*e1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
