package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromPointsNormalization(t *testing.T) {
	// Unnormalized, unsorted, duplicated input.
	p, err := FromPoints([]Point{
		{Value: 2, Prob: 1},
		{Value: 0, Prob: 2},
		{Value: 2, Prob: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("len %d, want 2 (duplicates merged)", p.Len())
	}
	if !almost(p.ProbAt(0), 0.5, 1e-12) || !almost(p.ProbAt(2), 0.5, 1e-12) {
		t.Fatalf("probs %g/%g, want 0.5/0.5", p.ProbAt(0), p.ProbAt(2))
	}
	if p.Min() != 0 || p.Max() != 2 || !almost(p.Mean(), 1, 1e-12) {
		t.Fatalf("min/max/mean = %g/%g/%g", p.Min(), p.Max(), p.Mean())
	}

	for _, bad := range [][]Point{
		nil,
		{{Value: 1, Prob: 0}},
		{{Value: 1, Prob: -0.5}},
		{{Value: math.NaN(), Prob: 1}},
		{{Value: math.Inf(1), Prob: 1}},
	} {
		if _, err := FromPoints(bad); err == nil {
			t.Fatalf("want error for %v", bad)
		}
	}
}

// TestRestoreBitExact: Restore(p.Points()) reproduces the PMF without
// renormalization — every value and probability bit-identical — while
// invalid point lists (the failure modes of a corrupted serialization)
// are rejected.
func TestRestoreBitExact(t *testing.T) {
	src, err := FromPoints([]Point{{0, 0.3}, {1, 0.1}, {2, 0.45}, {7, 0.15}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(src.Points())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range got.Points() {
		if pt != src.Points()[i] {
			t.Fatalf("point %d: %+v != %+v (must be bit-identical)", i, pt, src.Points()[i])
		}
	}
	// Restore copies: mutating the input afterwards must not alias.
	pts := append([]Point(nil), src.Points()...)
	restored, err := Restore(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0].Prob = 0.9999
	if restored.Points()[0].Prob != src.Points()[0].Prob {
		t.Fatal("Restore must copy its input")
	}
	for name, bad := range map[string][]Point{
		"empty":          {},
		"unsorted":       {{2, 0.5}, {1, 0.5}},
		"duplicate":      {{1, 0.5}, {1, 0.5}},
		"negative prob":  {{1, 1.5}, {2, -0.5}},
		"mass not unity": {{1, 0.25}, {2, 0.25}},
		"non-finite":     {{math.Inf(1), 1}},
	} {
		if _, err := Restore(bad); err == nil {
			t.Fatalf("%s: Restore must reject invalid points", name)
		}
	}
}

func TestConstructors(t *testing.T) {
	d := Delta(3)
	if d.Len() != 1 || d.Mean() != 3 || d.ProbAt(3) != 1 {
		t.Fatal("delta wrong")
	}
	u, err := UniformInts(-2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 5 || !almost(u.Mean(), 0, 1e-12) || !almost(u.ProbZero(), 0.2, 1e-12) {
		t.Fatalf("uniform wrong: len=%d mean=%g p0=%g", u.Len(), u.Mean(), u.ProbZero())
	}
	if _, err := UniformInts(3, 2); err == nil {
		t.Fatal("empty range must error")
	}
	s, err := FromSamples([]float64{1, 1, 2, 2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.ProbAt(2), 0.5, 1e-12) || !almost(s.ProbAt(5), 1.0/6, 1e-12) {
		t.Fatalf("samples wrong: %v", s.Points())
	}
	if _, err := FromSamples(nil); err == nil {
		t.Fatal("no samples must error")
	}
}

func TestExpectedAndMap(t *testing.T) {
	u, _ := UniformInts(0, 3)
	// E[X^2] over {0,1,2,3} = (0+1+4+9)/4.
	if got := u.Expected(func(v float64) float64 { return v * v }); !almost(got, 3.5, 1e-12) {
		t.Fatalf("E[X^2] = %g, want 3.5", got)
	}
	m := u.Map(func(v float64) float64 { return math.Min(v, 2) })
	if m.Max() != 2 || !almost(m.ProbAt(2), 0.5, 1e-12) {
		t.Fatalf("map-clamp wrong: %v", m.Points())
	}
}

// TestMixConvexCombination checks Mix(a, b, w) = w*a + (1-w)*b.
func TestMixConvexCombination(t *testing.T) {
	a := Delta(0)
	b := Delta(10)
	m, err := Mix(a, b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.ProbAt(0), 0.25, 1e-12) || !almost(m.ProbAt(10), 0.75, 1e-12) {
		t.Fatalf("mix probs wrong: %v", m.Points())
	}
	if !almost(m.Mean(), 7.5, 1e-12) {
		t.Fatalf("mix mean %g, want 7.5", m.Mean())
	}
	if got, _ := Mix(a, b, 0); got != b {
		t.Fatal("w=0 must return b")
	}
	if got, _ := Mix(a, b, 1); got != a {
		t.Fatal("w=1 must return a")
	}
	if _, err := Mix(a, b, 1.5); err == nil {
		t.Fatal("w out of range must error")
	}
	if _, err := Mix(nil, b, 0.5); err == nil {
		t.Fatal("nil operand must error")
	}
}

// TestConvolutionIdentities checks the algebra the energy pipeline relies
// on: sums of independent variables add means, products multiply them.
func TestConvolutionIdentities(t *testing.T) {
	u, _ := UniformInts(0, 7)

	// SumN(p, 1) is p itself (up to rebinning, which is a no-op here).
	s1, err := SumN(u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s1.Mean(), u.Mean(), 1e-12) || s1.Len() != u.Len() {
		t.Fatalf("SumN(p,1) changed the distribution")
	}

	// E[X1+...+Xn] = n*E[X]; support spans [n*min, n*max].
	for _, n := range []int{2, 3, 7, 100} {
		s, err := SumN(u, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("SumN(%d): %v", n, err)
		}
		if !almost(s.Mean(), float64(n)*u.Mean(), 1e-6*float64(n)) {
			t.Fatalf("SumN(%d) mean %g, want %g", n, s.Mean(), float64(n)*u.Mean())
		}
		if s.Min() < 0 || s.Max() > float64(n)*u.Max()+1e-9 {
			t.Fatalf("SumN(%d) support [%g, %g] out of range", n, s.Min(), s.Max())
		}
	}

	// Sum of two deltas is a delta at the sum.
	d, err := SumN(Delta(2.5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || !almost(d.Mean(), 10, 1e-12) {
		t.Fatalf("sum of deltas: %v", d.Points())
	}

	// Mul multiplies means of independent variables.
	a, _ := UniformInts(0, 3)
	b, _ := UniformInts(1, 4)
	prod := Mul(a, b)
	if err := prod.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almost(prod.Mean(), a.Mean()*b.Mean(), 1e-12) {
		t.Fatalf("E[XY] = %g, want %g", prod.Mean(), a.Mean()*b.Mean())
	}
	// Exact two-fold convolution of uniform {0,1}: triangle 1/4, 1/2, 1/4.
	c, _ := UniformInts(0, 1)
	tri, err := SumN(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(tri.ProbAt(0), 0.25, 1e-12) || !almost(tri.ProbAt(1), 0.5, 1e-12) || !almost(tri.ProbAt(2), 0.25, 1e-12) {
		t.Fatalf("triangle wrong: %v", tri.Points())
	}

	if _, err := SumN(u, 0); err == nil {
		t.Fatal("n=0 must error")
	}
}

// TestSumNCappedClipping checks the saturation semantics: mass beyond the
// cap piles up at the cap, mass below is untouched.
func TestSumNCappedClipping(t *testing.T) {
	u, _ := UniformInts(0, 3)

	// Cap far above the support: identical to the uncapped sum.
	s, err := SumN(u, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SumNCapped(u, 8, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Mean(), c.Mean(), 1e-9) {
		t.Fatalf("loose cap changed the mean: %g vs %g", s.Mean(), c.Mean())
	}

	// Tight cap: support clips at the cap and the mean drops.
	capAt := 10.0
	cc, err := SumNCapped(u, 8, capAt)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Max() > capAt {
		t.Fatalf("support %g exceeds cap %g", cc.Max(), capAt)
	}
	if cc.Mean() >= s.Mean() {
		t.Fatalf("clipping must lower the mean: %g vs %g", cc.Mean(), s.Mean())
	}
	if err := cc.Validate(); err != nil {
		t.Fatal(err)
	}

	// Degenerate: every draw saturates.
	sat, err := SumNCapped(Delta(100), 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Len() != 1 || sat.Mean() != 50 {
		t.Fatalf("saturated sum: %v", sat.Points())
	}

	if _, err := SumNCapped(u, 4, 0); err == nil {
		t.Fatal("non-positive cap must error")
	}
}

func TestRebinPreservesMeanAndMass(t *testing.T) {
	u, _ := UniformInts(0, 999)
	r := u.Rebin(64)
	if r.Len() > 64 {
		t.Fatalf("rebin len %d > 64", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !almost(r.Mean(), u.Mean(), 1e-9) {
		t.Fatalf("rebin mean %g, want %g", r.Mean(), u.Mean())
	}
	if got := u.Rebin(0); got != u {
		t.Fatal("n<=0 must be a no-op")
	}
	if got := u.Rebin(2000); got != u {
		t.Fatal("wide rebin must be a no-op")
	}
}

// Property: FromPoints output always validates and preserves the
// mass-weighted mean of its input.
func TestFromPointsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		total := 0.0
		moment := 0.0
		for i, r := range raw {
			pts[i] = Point{Value: float64(r % 16), Prob: float64(r%7) + 1}
			total += pts[i].Prob
			moment += pts[i].Prob * pts[i].Value
		}
		p, err := FromPoints(pts)
		if err != nil {
			return false
		}
		return p.Validate() == nil && almost(p.Mean(), moment/total, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
