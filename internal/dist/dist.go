// Package dist implements the discrete value distributions (probability
// mass functions) that carry CiMLoop's data-value dependence (paper
// §III-C/§III-D): operand PMFs are synthesized from workload statistics or
// recorded from tensors, transformed by encodings and bit slicing, and
// finally reduced by the circuit plug-ins to an expected energy per action.
//
// A PMF is an immutable, sorted, normalized list of (value, probability)
// points. All combinators return new PMFs; a *PMF is safe to share across
// goroutines, which is what lets layer contexts be cached and reused by
// concurrent sweeps (package serve).
package dist

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one atom of probability mass.
type Point struct {
	Value float64
	Prob  float64
}

// PMF is a discrete probability distribution over float64 values. Points
// are sorted by value, duplicates merged, and probabilities normalized to
// sum to one. The zero value is not usable; construct via FromPoints,
// FromSamples, Delta, or UniformInts.
type PMF struct {
	pts []Point
}

// FromPoints builds a PMF from arbitrary points: duplicates are merged,
// zero-mass points dropped, values sorted, and probabilities normalized.
// It rejects empty input, non-finite values, and negative probabilities.
func FromPoints(pts []Point) (*PMF, error) {
	if len(pts) == 0 {
		return nil, errors.New("dist: no points")
	}
	cp := make([]Point, 0, len(pts))
	total := 0.0
	for _, pt := range pts {
		if math.IsNaN(pt.Value) || math.IsInf(pt.Value, 0) {
			return nil, fmt.Errorf("dist: non-finite value %g", pt.Value)
		}
		if math.IsNaN(pt.Prob) || pt.Prob < 0 {
			return nil, fmt.Errorf("dist: invalid probability %g at value %g", pt.Prob, pt.Value)
		}
		if pt.Prob == 0 {
			continue
		}
		cp = append(cp, pt)
		total += pt.Prob
	}
	if total <= 0 {
		return nil, errors.New("dist: zero total probability")
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i].Value < cp[j].Value })
	out := cp[:0]
	for _, pt := range cp {
		if n := len(out); n > 0 && out[n-1].Value == pt.Value {
			out[n-1].Prob += pt.Prob
			continue
		}
		out = append(out, pt)
	}
	if total != 1 {
		for i := range out {
			out[i].Prob /= total
		}
	}
	return &PMF{pts: out}, nil
}

// FromSamples builds an empirical PMF from observed values, each sample
// carrying equal mass (the paper's RecordOperandPMFs).
func FromSamples(samples []float64) (*PMF, error) {
	if len(samples) == 0 {
		return nil, errors.New("dist: no samples")
	}
	counts := make(map[float64]float64, 64)
	for _, s := range samples {
		counts[s]++
	}
	pts := make([]Point, 0, len(counts))
	for v, c := range counts {
		pts = append(pts, Point{Value: v, Prob: c})
	}
	return FromPoints(pts)
}

// Delta returns the degenerate distribution concentrated at v.
func Delta(v float64) *PMF {
	return &PMF{pts: []Point{{Value: v, Prob: 1}}}
}

// Restore rebuilds a PMF from points previously obtained via Points,
// without renormalizing: the input must already satisfy the PMF
// invariants (sorted, strictly increasing, positive mass summing to one
// within tolerance). Unlike FromPoints — whose normalization divides every
// probability by the float sum and so can perturb the stored bits —
// Restore copies the points verbatim, which is what lets a serialized PMF
// round-trip bit-exactly (package persist's warm-start codec).
func Restore(pts []Point) (*PMF, error) {
	p := &PMF{pts: append([]Point(nil), pts...)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// UniformInts returns the uniform distribution over the integers
// lo, lo+1, ..., hi inclusive.
func UniformInts(lo, hi int) (*PMF, error) {
	if hi < lo {
		return nil, fmt.Errorf("dist: uniform range [%d, %d] is empty", lo, hi)
	}
	n := hi - lo + 1
	pts := make([]Point, n)
	p := 1 / float64(n)
	for i := 0; i < n; i++ {
		pts[i] = Point{Value: float64(lo + i), Prob: p}
	}
	return &PMF{pts: pts}, nil
}

// Points returns the distribution's atoms in increasing value order. The
// returned slice is shared; callers must not modify it.
func (p *PMF) Points() []Point { return p.pts }

// Validate checks the PMF's invariants: non-empty, strictly increasing
// finite values, positive probabilities, and unit total mass.
func (p *PMF) Validate() error {
	if p == nil || len(p.pts) == 0 {
		return errors.New("dist: empty PMF")
	}
	total := 0.0
	for i, pt := range p.pts {
		if math.IsNaN(pt.Value) || math.IsInf(pt.Value, 0) {
			return fmt.Errorf("dist: non-finite value %g", pt.Value)
		}
		if pt.Prob <= 0 || math.IsNaN(pt.Prob) {
			return fmt.Errorf("dist: non-positive probability %g at value %g", pt.Prob, pt.Value)
		}
		if i > 0 && p.pts[i-1].Value >= pt.Value {
			return fmt.Errorf("dist: values not strictly increasing at index %d", i)
		}
		total += pt.Prob
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("dist: total probability %g != 1", total)
	}
	return nil
}

// ProbAt returns P(X == v), zero when v is not in the support.
func (p *PMF) ProbAt(v float64) float64 {
	i := sort.Search(len(p.pts), func(i int) bool { return p.pts[i].Value >= v })
	if i < len(p.pts) && p.pts[i].Value == v {
		return p.pts[i].Prob
	}
	return 0
}

// ProbZero returns P(X == 0), the sparsity of the distribution.
func (p *PMF) ProbZero() float64 { return p.ProbAt(0) }

// Len returns the number of distinct support values.
func (p *PMF) Len() int { return len(p.pts) }

// Min returns the smallest support value.
func (p *PMF) Min() float64 { return p.pts[0].Value }

// Max returns the largest support value.
func (p *PMF) Max() float64 { return p.pts[len(p.pts)-1].Value }

// Mean returns the expected value.
func (p *PMF) Mean() float64 {
	m := 0.0
	for _, pt := range p.pts {
		m += pt.Value * pt.Prob
	}
	return m
}

// Expected returns E[f(X)], the probability-weighted mean of f over the
// support. This is the reduction every circuit model applies to turn a
// value distribution into an average energy per action.
func (p *PMF) Expected(f func(float64) float64) float64 {
	e := 0.0
	for _, pt := range p.pts {
		e += pt.Prob * f(pt.Value)
	}
	return e
}

// Map transforms every support value through f, merging collisions.
func (p *PMF) Map(f func(float64) float64) *PMF {
	pts := make([]Point, len(p.pts))
	for i, pt := range p.pts {
		pts[i] = Point{Value: f(pt.Value), Prob: pt.Prob}
	}
	out, err := FromPoints(pts)
	if err != nil {
		// Probabilities are untouched, so the only failure mode is f
		// producing non-finite values; collapse those to a point mass.
		return Delta(0)
	}
	return out
}

// Rebin merges the support down to at most n bins. Each bin keeps its
// conditional mean value, so the overall mean is preserved exactly while
// the support (and thus downstream convolution cost) is bounded.
func (p *PMF) Rebin(n int) *PMF {
	if n <= 0 || len(p.pts) <= n {
		return p
	}
	lo, hi := p.Min(), p.Max()
	width := (hi - lo) / float64(n)
	if width <= 0 {
		return p
	}
	type bin struct{ mass, moment float64 }
	bins := make([]bin, n)
	for _, pt := range p.pts {
		i := int((pt.Value - lo) / width)
		if i >= n {
			i = n - 1
		}
		bins[i].mass += pt.Prob
		bins[i].moment += pt.Prob * pt.Value
	}
	pts := make([]Point, 0, n)
	for _, b := range bins {
		if b.mass <= 0 {
			continue
		}
		pts = append(pts, Point{Value: b.moment / b.mass, Prob: b.mass})
	}
	return &PMF{pts: pts}
}

// Mix returns the mixture w·a + (1-w)·b: a value drawn from a with
// probability w, from b otherwise.
func Mix(a, b *PMF, w float64) (*PMF, error) {
	if a == nil || b == nil {
		return nil, errors.New("dist: mix of nil PMF")
	}
	if w < 0 || w > 1 || math.IsNaN(w) {
		return nil, fmt.Errorf("dist: mixture weight %g out of [0,1]", w)
	}
	if w == 0 {
		return b, nil
	}
	if w == 1 {
		return a, nil
	}
	pts := make([]Point, 0, a.Len()+b.Len())
	for _, pt := range a.pts {
		pts = append(pts, Point{Value: pt.Value, Prob: pt.Prob * w})
	}
	for _, pt := range b.pts {
		pts = append(pts, Point{Value: pt.Value, Prob: pt.Prob * (1 - w)})
	}
	return FromPoints(pts)
}

// Mul returns the distribution of X·Y for independent X ~ a, Y ~ b.
// Callers typically Rebin the result to bound downstream cost.
func Mul(a, b *PMF) *PMF {
	acc := make(map[float64]float64, a.Len()*b.Len())
	for _, pa := range a.pts {
		for _, pb := range b.pts {
			acc[pa.Value*pb.Value] += pa.Prob * pb.Prob
		}
	}
	return fromMap(acc)
}

// convBins bounds the support of intermediate convolution results. 512
// bins keep SumN over tens of thousands of terms fast while the
// conditional-mean rebinning keeps the running mean exact.
const convBins = 512

// conv returns the distribution of X+Y for independent X ~ a, Y ~ b,
// rebinned to at most convBins points.
func conv(a, b *PMF) *PMF {
	acc := make(map[float64]float64, a.Len()*b.Len())
	for _, pa := range a.pts {
		for _, pb := range b.pts {
			acc[pa.Value+pb.Value] += pa.Prob * pb.Prob
		}
	}
	return fromMap(acc).Rebin(convBins)
}

// fromMap assembles a PMF from an accumulator map without renormalizing
// precision loss (mass sums to one up to rounding by construction).
func fromMap(acc map[float64]float64) *PMF {
	pts := make([]Point, 0, len(acc))
	for v, p := range acc {
		if p > 0 {
			pts = append(pts, Point{Value: v, Prob: p})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value })
	return &PMF{pts: pts}
}

// SumN returns the distribution of the sum of n independent draws from p,
// computed by binary-exponentiation convolution (log2 n convolutions) with
// bounded intermediate support.
func SumN(p *PMF, n int) (*PMF, error) {
	return sumN(p, n, math.Inf(1))
}

// SumNCapped is SumN with saturation: the running sum clips at cap, the
// partial-sum clipping real macros apply when the analog swing saturates
// (the "+1 bit per 4x rows" coupling of the ADC sizing study). For the
// non-negative slice-product PMFs this models, clipping each partial sum
// is identical to clipping the final sum.
func SumNCapped(p *PMF, n int, ceiling float64) (*PMF, error) {
	if ceiling <= 0 || math.IsNaN(ceiling) {
		return nil, fmt.Errorf("dist: sum cap %g must be positive", ceiling)
	}
	return sumN(p, n, ceiling)
}

func sumN(p *PMF, n int, ceiling float64) (*PMF, error) {
	if p == nil {
		return nil, errors.New("dist: sum of nil PMF")
	}
	if n <= 0 {
		return nil, fmt.Errorf("dist: sum of %d draws", n)
	}
	clip := func(q *PMF) *PMF {
		if math.IsInf(ceiling, 1) || q.Max() <= ceiling {
			return q
		}
		return q.Map(func(v float64) float64 { return math.Min(v, ceiling) })
	}
	base := clip(p.Rebin(convBins))
	var acc *PMF
	for n > 0 {
		if n&1 == 1 {
			if acc == nil {
				acc = base
			} else {
				acc = clip(conv(acc, base))
			}
		}
		n >>= 1
		if n > 0 {
			base = clip(conv(base, base))
		}
	}
	return acc, nil
}
