package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := NewTable("demo", "a", "bb", "ccc")
	tab.AddRow("1", "2", "3")
	tab.AddRow("long-cell", "x", "y")
	tab.Note = "hello"
	s := tab.String()
	for _, want := range []string{"== demo ==", "a", "bb", "ccc", "long-cell", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Columns align: header and rows share the first column width.
	lines := strings.Split(s, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "a") {
			header = l
			_ = i
		}
		if strings.HasPrefix(l, "1") {
			row = l
		}
	}
	if header == "" || row == "" {
		t.Fatalf("layout unexpected:\n%s", s)
	}
	if strings.Index(header, "bb") != strings.Index(row, "2") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("demo", "x", "y")
	tab.AddRow("plain", `with "quote", comma`)
	csv := tab.CSV()
	if !strings.Contains(csv, "x,y\n") {
		t.Errorf("header missing: %q", csv)
	}
	if !strings.Contains(csv, `"with ""quote"", comma"`) {
		t.Errorf("quoting wrong: %q", csv)
	}
}

func TestNumAndPct(t *testing.T) {
	if Num(1234.5678) != "1235" {
		t.Errorf("Num = %q", Num(1234.5678))
	}
	if Num(0.00012345) != "0.0001234" && Num(0.00012345) != "0.0001235" {
		t.Errorf("Num small = %q", Num(0.00012345))
	}
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
}

func TestEmptyTitleTable(t *testing.T) {
	tab := NewTable("", "only")
	tab.AddRow("v")
	if strings.Contains(tab.String(), "==") {
		t.Error("untitled table must not render a title banner")
	}
}
