// Package report renders experiment results as aligned ASCII tables and
// CSV, the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Note is an optional caption line.
	Note string
}

// NewTable constructs a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Num formats a value with four significant digits.
func Num(v float64) string {
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		b.WriteString("note: " + t.Note + "\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
