package tensor

import (
	"testing"
	"testing/quick"
)

func TestConv2DValidatesAndCounts(t *testing.T) {
	e, err := Conv2D("conv", 1, 64, 3, 112, 112, 7, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantMACs := int64(1) * 64 * 3 * 112 * 112 * 7 * 7
	if got := e.MACs(); got != wantMACs {
		t.Fatalf("MACs = %d, want %d", got, wantMACs)
	}
	wv, err := e.Volume("Weights")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(64 * 3 * 7 * 7); wv != want {
		t.Fatalf("weight volume = %d, want %d", wv, want)
	}
	ov, err := e.Volume("Outputs")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(64 * 112 * 112); ov != want {
		t.Fatalf("output volume = %d, want %d", ov, want)
	}
	// Input halo: stride 2, P=112, R=7 -> extent 2*111 + 6 + 1 = 229.
	iv, err := e.Volume("Inputs")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 229 * 229); iv != want {
		t.Fatalf("input volume = %d, want %d", iv, want)
	}
}

func TestConv2DErrors(t *testing.T) {
	if _, err := Conv2D("bad", 1, 1, 1, 1, 1, 1, 1, 0); err == nil {
		t.Fatal("want error for stride 0")
	}
	if _, err := Conv2D("bad", 0, 1, 1, 1, 1, 1, 1, 1); err == nil {
		t.Fatal("want error for zero bound")
	}
}

func TestMatMul(t *testing.T) {
	e, err := MatMul("mm", 4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.MACs() != 4*8*16 {
		t.Fatalf("MACs = %d", e.MACs())
	}
	rd, err := e.RelevantDims("Inputs")
	if err != nil {
		t.Fatal(err)
	}
	if len(rd) != 2 || rd[0] != "C" || rd[1] != "M" {
		t.Fatalf("relevant dims of Inputs = %v", rd)
	}
	rd, _ = e.RelevantDims("Outputs")
	if len(rd) != 2 || rd[0] != "K" || rd[1] != "M" {
		t.Fatalf("relevant dims of Outputs = %v", rd)
	}
}

func TestDepthwise(t *testing.T) {
	e, err := DepthwiseConv2D("dw", 1, 32, 56, 56, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.MACs() != int64(32)*56*56*3*3 {
		t.Fatalf("MACs = %d", e.MACs())
	}
	wv, _ := e.Volume("Weights")
	if wv != 32*3*3 {
		t.Fatalf("weight volume = %d", wv)
	}
	if _, err := DepthwiseConv2D("dw", 1, 1, 1, 1, 1, 1, 0); err == nil {
		t.Fatal("want stride error")
	}
}

func TestValidateCatchesBadEinsums(t *testing.T) {
	base := func() *Einsum {
		e, _ := MatMul("mm", 2, 2, 2)
		return e
	}
	e := base()
	e.Name = ""
	if err := e.Validate(); err == nil {
		t.Error("want error for empty name")
	}
	e = base()
	e.Dims = append(e.Dims, Dim{Name: "M", Bound: 2})
	if err := e.Validate(); err == nil {
		t.Error("want error for duplicate dim")
	}
	e = base()
	e.Spaces[0].Axes[0][0].Dim = "Z"
	if err := e.Validate(); err == nil {
		t.Error("want error for unknown dim reference")
	}
	e = base()
	e.Spaces[2].Kind = Input
	if err := e.Validate(); err == nil {
		t.Error("want error for missing output")
	}
	e = base()
	e.Spaces[0].Axes[0][0].Coeff = 0
	if err := e.Validate(); err == nil {
		t.Error("want error for zero coefficient")
	}
	e = base()
	e.Spaces[1].Name = "Inputs"
	if err := e.Validate(); err == nil {
		t.Error("want error for duplicate space name")
	}
	e = base()
	e.Dims = nil
	if err := e.Validate(); err == nil {
		t.Error("want error for no dims")
	}
}

func TestDimBoundAndLookups(t *testing.T) {
	e, _ := MatMul("mm", 3, 5, 7)
	b, err := e.DimBound("C")
	if err != nil || b != 5 {
		t.Fatalf("DimBound(K) = %d, %v", b, err)
	}
	if _, err := e.DimBound("Z"); err == nil {
		t.Fatal("want error for unknown dim")
	}
	if _, err := e.Space("Nope"); err == nil {
		t.Fatal("want error for unknown space")
	}
	s, err := e.SpaceOfKind(Weight)
	if err != nil || s.Name != "Weights" {
		t.Fatalf("SpaceOfKind(Weight) = %v, %v", s.Name, err)
	}
	if _, err := e.RelevantDims("Nope"); err == nil {
		t.Fatal("want error for unknown space in RelevantDims")
	}
}

func TestCoordIsBijectiveOnMatMul(t *testing.T) {
	e, _ := MatMul("mm", 3, 4, 5)
	in, _ := e.Space("Inputs")
	seen := map[int64]bool{}
	for m := 0; m < 3; m++ {
		for k := 0; k < 4; k++ {
			c := in.Coord(map[string]int{"M": m, "C": k, "K": 0}, e.Dims)
			if seen[c] {
				t.Fatalf("coord collision at m=%d k=%d", m, k)
			}
			seen[c] = true
		}
	}
	if len(seen) != 12 {
		t.Fatalf("expected 12 unique coords, got %d", len(seen))
	}
}

func TestCoordConvHaloSharing(t *testing.T) {
	// Stride-1 3x3 conv: input coord for (P=1,R=0) equals (P=0,R=1).
	e, err := Conv2D("c", 1, 1, 1, 4, 4, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := e.Space("Inputs")
	a := in.Coord(map[string]int{"K": 0, "C": 0, "P": 1, "R": 0, "Q": 0, "S": 0}, e.Dims)
	b := in.Coord(map[string]int{"K": 0, "C": 0, "P": 0, "R": 1, "Q": 0, "S": 0}, e.Dims)
	if a != b {
		t.Fatalf("halo coords differ: %d vs %d", a, b)
	}
}

func TestKindString(t *testing.T) {
	if Input.String() != "Inputs" || Weight.String() != "Weights" || Output.String() != "Outputs" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestStringRendersDims(t *testing.T) {
	e, _ := MatMul("mm", 2, 3, 4)
	if s := e.String(); s != "mm[M=2,C=3,K=4]" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: for any valid conv shape, MACs == output volume * per-output
// MACs (C*R*S), and all tile volumes with full bounds match Volume().
func TestQuickConvAccounting(t *testing.T) {
	f := func(k, c, p, r uint8) bool {
		K, C, P, R := int(k%8)+1, int(c%8)+1, int(p%8)+1, int(r%3)+1
		e, err := Conv2D("c", 1, K, C, P, P, R, R, 1)
		if err != nil {
			return false
		}
		ov, err := e.Volume("Outputs")
		if err != nil {
			return false
		}
		if e.MACs() != ov*int64(C*R*R) {
			return false
		}
		// TileVolume with full bounds equals Volume for every space.
		full := map[string]int{}
		for _, d := range e.Dims {
			full[d.Name] = d.Bound
		}
		for _, s := range e.Spaces {
			v, err := e.Volume(s.Name)
			if err != nil || s.TileVolume(full) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
