// Package tensor describes DNN workloads as extended-Einsum operations:
// a set of named iteration dimensions plus data spaces (tensors) whose
// coordinates are affine projections of those dimensions. This mirrors the
// workload representation CiMLoop inherits from Timeloop (paper §II-B):
// convolutions, matrix multiplies, and depthwise convolutions all fit.
package tensor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes the roles tensors play in a tensor operation.
type Kind int

// Tensor roles. Inputs and Weights are read-only; Outputs are read-modify-
// write accumulated.
const (
	Input Kind = iota
	Weight
	Output
)

// String returns the conventional name of the tensor role.
func (k Kind) String() string {
	switch k {
	case Input:
		return "Inputs"
	case Weight:
		return "Weights"
	case Output:
		return "Outputs"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dim is a named iteration dimension with its loop bound.
type Dim struct {
	Name  string
	Bound int
}

// Coef is one term of an affine axis projection: Coeff * index(Dim).
type Coef struct {
	Dim   string
	Coeff int
}

// Axis is one coordinate of a data space, an affine combination of
// iteration dimensions (e.g. the input height axis of a convolution is
// stride*P + R).
type Axis []Coef

// DataSpace is a tensor accessed by an Einsum: a role plus the affine
// projection from iteration space to tensor coordinates.
type DataSpace struct {
	Name string
	Kind Kind
	Axes []Axis
}

// Einsum is one tensor operation: iteration dimensions and the data spaces
// they index. The iteration space is the full rectangular product of the
// dimension bounds; each point performs one multiply-accumulate.
type Einsum struct {
	Name   string
	Dims   []Dim
	Spaces []DataSpace
}

// Validate checks that dimension names are unique with positive bounds and
// that every projection references declared dimensions.
func (e *Einsum) Validate() error {
	if e.Name == "" {
		return errors.New("tensor: einsum has no name")
	}
	if len(e.Dims) == 0 {
		return fmt.Errorf("tensor: einsum %q has no dimensions", e.Name)
	}
	seen := make(map[string]bool, len(e.Dims))
	for _, d := range e.Dims {
		if d.Name == "" {
			return fmt.Errorf("tensor: einsum %q has an unnamed dimension", e.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("tensor: einsum %q declares dimension %q twice", e.Name, d.Name)
		}
		if d.Bound <= 0 {
			return fmt.Errorf("tensor: einsum %q dimension %q has bound %d", e.Name, d.Name, d.Bound)
		}
		seen[d.Name] = true
	}
	if len(e.Spaces) == 0 {
		return fmt.Errorf("tensor: einsum %q has no data spaces", e.Name)
	}
	var haveOutput bool
	names := make(map[string]bool, len(e.Spaces))
	for _, s := range e.Spaces {
		if s.Name == "" {
			return fmt.Errorf("tensor: einsum %q has an unnamed data space", e.Name)
		}
		if names[s.Name] {
			return fmt.Errorf("tensor: einsum %q declares data space %q twice", e.Name, s.Name)
		}
		names[s.Name] = true
		if s.Kind == Output {
			haveOutput = true
		}
		for _, ax := range s.Axes {
			if len(ax) == 0 {
				return fmt.Errorf("tensor: einsum %q space %q has an empty axis", e.Name, s.Name)
			}
			for _, c := range ax {
				if !seen[c.Dim] {
					return fmt.Errorf("tensor: einsum %q space %q references unknown dimension %q", e.Name, s.Name, c.Dim)
				}
				if c.Coeff == 0 {
					return fmt.Errorf("tensor: einsum %q space %q has a zero coefficient on %q", e.Name, s.Name, c.Dim)
				}
			}
		}
	}
	if !haveOutput {
		return fmt.Errorf("tensor: einsum %q has no output data space", e.Name)
	}
	return nil
}

// DimBound returns the bound of the named dimension, or an error.
func (e *Einsum) DimBound(name string) (int, error) {
	for _, d := range e.Dims {
		if d.Name == name {
			return d.Bound, nil
		}
	}
	return 0, fmt.Errorf("tensor: einsum %q has no dimension %q", e.Name, name)
}

// MACs returns the total multiply-accumulate count: the product of all
// dimension bounds.
func (e *Einsum) MACs() int64 {
	n := int64(1)
	for _, d := range e.Dims {
		n *= int64(d.Bound)
	}
	return n
}

// RelevantDims returns the sorted set of dimension names that appear in the
// projection of the named data space. Loops over irrelevant dimensions reuse
// the tensor.
func (e *Einsum) RelevantDims(space string) ([]string, error) {
	for _, s := range e.Spaces {
		if s.Name != space {
			continue
		}
		set := make(map[string]bool)
		for _, ax := range s.Axes {
			for _, c := range ax {
				set[c.Dim] = true
			}
		}
		out := make([]string, 0, len(set))
		for d := range set {
			out = append(out, d)
		}
		sort.Strings(out)
		return out, nil
	}
	return nil, fmt.Errorf("tensor: einsum %q has no data space %q", e.Name, space)
}

// Space returns the named data space.
func (e *Einsum) Space(name string) (DataSpace, error) {
	for _, s := range e.Spaces {
		if s.Name == name {
			return s, nil
		}
	}
	return DataSpace{}, fmt.Errorf("tensor: einsum %q has no data space %q", e.Name, name)
}

// SpaceOfKind returns the first data space with the given role.
func (e *Einsum) SpaceOfKind(k Kind) (DataSpace, error) {
	for _, s := range e.Spaces {
		if s.Kind == k {
			return s, nil
		}
	}
	return DataSpace{}, fmt.Errorf("tensor: einsum %q has no %s data space", e.Name, k)
}

// TileVolume returns the number of distinct tensor elements touched by an
// iteration-space tile with the given per-dimension extents. Dimensions
// missing from tile default to extent 1. For an axis sum(c_i * d_i) over a
// box, the coordinate extent is sum(|c_i| * (t_i - 1)) + 1 (the sliding-
// window halo rule for convolutions).
func (s DataSpace) TileVolume(tile map[string]int) int64 {
	vol := int64(1)
	for _, ax := range s.Axes {
		extent := 1
		for _, c := range ax {
			t := tile[c.Dim]
			if t <= 0 {
				t = 1
			}
			co := c.Coeff
			if co < 0 {
				co = -co
			}
			extent += co * (t - 1)
		}
		vol *= int64(extent)
	}
	return vol
}

// Volume returns the total number of elements of the data space over the
// full iteration space of e.
func (e *Einsum) Volume(space string) (int64, error) {
	s, err := e.Space(space)
	if err != nil {
		return 0, err
	}
	tile := make(map[string]int, len(e.Dims))
	for _, d := range e.Dims {
		tile[d.Name] = d.Bound
	}
	return s.TileVolume(tile), nil
}

// Coord maps an iteration-space point (dimension name → index) to the flat
// coordinate of this data space, using row-major order over its axes with
// the extents implied by full dimension bounds from dims.
func (s DataSpace) Coord(point map[string]int, dims []Dim) int64 {
	bound := make(map[string]int, len(dims))
	for _, d := range dims {
		bound[d.Name] = d.Bound
	}
	flat := int64(0)
	for _, ax := range s.Axes {
		extent := 1
		v := 0
		for _, c := range ax {
			co := c.Coeff
			if co < 0 {
				co = -co
			}
			extent += co * (bound[c.Dim] - 1)
			v += c.Coeff * point[c.Dim]
		}
		flat = flat*int64(extent) + int64(v)
	}
	return flat
}

// String renders the einsum in a compact algebraic form.
func (e *Einsum) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	b.WriteString("[")
	for i, d := range e.Dims {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%s=%d", d.Name, d.Bound)
	}
	b.WriteString("]")
	return b.String()
}

// Conv2D builds the 7-dimensional convolution einsum used throughout the
// paper's workloads. n is the batch, k output channels, c input channels,
// p×q the output feature map, r×s the filter, stride the spatial stride.
func Conv2D(name string, n, k, c, p, q, r, s, stride int) (*Einsum, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("tensor: Conv2D %q stride %d", name, stride)
	}
	e := &Einsum{
		Name: name,
		Dims: []Dim{
			{Name: "N", Bound: n}, {Name: "K", Bound: k}, {Name: "C", Bound: c},
			{Name: "P", Bound: p}, {Name: "Q", Bound: q},
			{Name: "R", Bound: r}, {Name: "S", Bound: s},
		},
		Spaces: []DataSpace{
			{
				Name: "Inputs", Kind: Input,
				Axes: []Axis{
					{{Dim: "N", Coeff: 1}},
					{{Dim: "C", Coeff: 1}},
					{{Dim: "P", Coeff: stride}, {Dim: "R", Coeff: 1}},
					{{Dim: "Q", Coeff: stride}, {Dim: "S", Coeff: 1}},
				},
			},
			{
				Name: "Weights", Kind: Weight,
				Axes: []Axis{
					{{Dim: "K", Coeff: 1}},
					{{Dim: "C", Coeff: 1}},
					{{Dim: "R", Coeff: 1}},
					{{Dim: "S", Coeff: 1}},
				},
			},
			{
				Name: "Outputs", Kind: Output,
				Axes: []Axis{
					{{Dim: "N", Coeff: 1}},
					{{Dim: "K", Coeff: 1}},
					{{Dim: "P", Coeff: 1}},
					{{Dim: "Q", Coeff: 1}},
				},
			},
		},
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// MatMul builds an M×C×K matrix multiply einsum: Outputs[m,k] +=
// Inputs[m,c] * Weights[c,k]. The reduction dim is named C and the output
// dim K to match Conv2D, so one architecture's mapping preferences apply
// to both workload families.
func MatMul(name string, m, c, k int) (*Einsum, error) {
	e := &Einsum{
		Name: name,
		Dims: []Dim{
			{Name: "M", Bound: m}, {Name: "C", Bound: c}, {Name: "K", Bound: k},
		},
		Spaces: []DataSpace{
			{Name: "Inputs", Kind: Input, Axes: []Axis{{{Dim: "M", Coeff: 1}}, {{Dim: "C", Coeff: 1}}}},
			{Name: "Weights", Kind: Weight, Axes: []Axis{{{Dim: "C", Coeff: 1}}, {{Dim: "K", Coeff: 1}}}},
			{Name: "Outputs", Kind: Output, Axes: []Axis{{{Dim: "M", Coeff: 1}}, {{Dim: "K", Coeff: 1}}}},
		},
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}

// DepthwiseConv2D builds a depthwise convolution: each channel is filtered
// independently (no K dimension; weights and outputs share C).
func DepthwiseConv2D(name string, n, c, p, q, r, s, stride int) (*Einsum, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("tensor: DepthwiseConv2D %q stride %d", name, stride)
	}
	e := &Einsum{
		Name: name,
		Dims: []Dim{
			{Name: "N", Bound: n}, {Name: "C", Bound: c},
			{Name: "P", Bound: p}, {Name: "Q", Bound: q},
			{Name: "R", Bound: r}, {Name: "S", Bound: s},
		},
		Spaces: []DataSpace{
			{
				Name: "Inputs", Kind: Input,
				Axes: []Axis{
					{{Dim: "N", Coeff: 1}},
					{{Dim: "C", Coeff: 1}},
					{{Dim: "P", Coeff: stride}, {Dim: "R", Coeff: 1}},
					{{Dim: "Q", Coeff: stride}, {Dim: "S", Coeff: 1}},
				},
			},
			{
				Name: "Weights", Kind: Weight,
				Axes: []Axis{
					{{Dim: "C", Coeff: 1}},
					{{Dim: "R", Coeff: 1}},
					{{Dim: "S", Coeff: 1}},
				},
			},
			{
				Name: "Outputs", Kind: Output,
				Axes: []Axis{
					{{Dim: "N", Coeff: 1}},
					{{Dim: "C", Coeff: 1}},
					{{Dim: "P", Coeff: 1}},
					{{Dim: "Q", Coeff: 1}},
				},
			},
		},
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
