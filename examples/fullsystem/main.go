// Fullsystem: the paper's Fig. 15 study as a script. Macro D (22 nm C-2C
// SRAM) is placed in a full system — DRAM, global buffer, router, four
// parallel macros — and evaluated under the three data-placement
// scenarios: everything streamed from DRAM, weight-stationary, and
// weight-stationary with inputs/outputs pinned on-chip.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	gpt2, err := cimloop.NetworkByName("gpt2")
	if err != nil {
		log.Fatal(err)
	}
	gpt2.Layers = gpt2.Layers[:2] // keep the run quick
	resnet, err := cimloop.NetworkByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	resnet.Layers = resnet.Layers[4:8]

	nets := []*cimloop.Network{gpt2, resnet}
	scenarios := []cimloop.Scenario{cimloop.AllDRAM, cimloop.WeightStationary, cimloop.OnChipIO}

	fmt.Printf("%-30s  %-12s  %10s  %10s  %10s  %10s\n",
		"scenario", "workload", "DRAM", "buffer", "macro", "total pJ/MAC")
	for _, sc := range scenarios {
		for _, net := range nets {
			macro, err := cimloop.MacroD(cimloop.MacroConfig{})
			if err != nil {
				log.Fatal(err)
			}
			sys, err := cimloop.BuildSystem(macro, sc, cimloop.SystemConfig{Macros: 4})
			if err != nil {
				log.Fatal(err)
			}
			eng, err := cimloop.NewEngine(sys)
			if err != nil {
				log.Fatal(err)
			}
			var dram, buffer, macroE float64
			var macs int64
			for _, l := range net.Layers {
				// Scenario studies pin the dataflow: one (greedy) mapping.
				r, err := eng.EvaluateLayer(l, 1, 0)
				if err != nil {
					log.Fatal(err)
				}
				rep := float64(l.Repeat)
				for _, le := range r.Levels {
					switch le.Name {
					case "dram":
						dram += le.Total * rep
					case "global_buffer":
						buffer += le.Total * rep
					default:
						macroE += le.Total * rep
					}
				}
				macs += r.MACs * int64(l.Repeat)
			}
			perMAC := 1e12 / float64(macs)
			fmt.Printf("%-30s  %-12s  %10.3f  %10.3f  %10.3f  %10.3f\n",
				sc, net.Name, dram*perMAC, buffer*perMAC, macroE*perMAC,
				(dram+buffer+macroE)*perMAC)
		}
	}
	fmt.Println("\nWeight-stationary CiM removes the dominant DRAM weight traffic;")
	fmt.Println("keeping inputs/outputs on-chip (layer fusion) removes most of the rest.")
}
