// Declarative experiments quickstart: load the repository's sweeps/
// directory, bind a parameter into one definition, and evaluate the
// compiled grid in-process — the offline half of docs/EXPERIMENTS.md.
// The same definitions serve at POST /v1/experiments/{name} when the
// server boots with `cimloop serve -sweeps ./sweeps`.
//
// Run from the repo root:  go run ./examples/sweeps
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Load and validate every sweeps/*.yaml; one broken file fails the
	// whole directory, which is why CI can gate on this exact call.
	defs, err := cimloop.LoadSweepDefs("./sweeps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d definitions: %v\n\n", defs.Len(), defs.Names())

	def, ok := defs.Get("quick-smoke")
	if !ok {
		log.Fatal("no quick-smoke definition — run from the repo root")
	}

	// Bind a declared parameter. Strings coerce ("2" -> int 2), and
	// undeclared names or out-of-range values are errors — the same
	// rules an HTTP caller's params object goes through.
	reqs, err := def.Compile(map[string]any{"mappings": 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s compiles to %d requests at mappings=2\n\n", def.Name, len(reqs))

	// Evaluate the grid with the same engine the server uses.
	srv := cimloop.NewServer(cimloop.BatchOptions{})
	defer srv.Close()
	results, err := srv.Sweep(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cimloop.SweepResultsTable(results).String())
}
