// Custommacro: define a brand-new CiM macro from a textual container-
// hierarchy specification (the paper's Fig. 5b YAML, no simulator source
// changes needed) and compare it against the published Macro B on the
// same workload.
package main

import (
	"fmt"
	"log"

	"repro"
)

// mySpec describes an experimental ReRAM macro: 2-bit cells, bit-serial
// inputs, shift-add digital accumulation, one 6b ADC per column.
const mySpec = `
name: my-reram-macro
node_nm: 22
clock_hz: 250e6
input_bits: 8
weight_bits: 8
dac_bits: 1
cell_bits: 2
hierarchy:
  - component: buffer
    class: sram-buffer
    attrs: {capacity_kb: 32}
    temporal_reuse: [Inputs, Weights, Outputs]
  - component: dac
    class: dac
    no_coalesce: [Inputs]
  - container: columns
    mesh_x: 64
    spatial_reuse: [Inputs]
    children:
      - component: shift_add
        class: shift-add
        attrs: {bits: 24}
        temporal_reuse: [Outputs]
      - component: adc
        class: adc
        attrs: {resolution: 6, value_aware: 1}
        no_coalesce: [Outputs]
      - container: rows
        mesh_y: 128
        spatial_reuse: [Outputs]
        children:
          - component: cell
            class: reram-cell
            compute: true
            temporal_reuse: [Weights]
mapping:
  spatial_prefs:
    columns: [K]
    rows: [C, R, S]
  inner_dims: [C, R, S]
  weight_slice_level: columns
  input_slice_level: shift_add
`

func main() {
	custom, err := cimloop.ParseSpec(mySpec)
	if err != nil {
		log.Fatal(err)
	}
	published, err := cimloop.Macro("macro-b")
	if err != nil {
		log.Fatal(err)
	}

	net, err := cimloop.NetworkByName("mobilenetv3-large")
	if err != nil {
		log.Fatal(err)
	}
	net.Layers = net.Layers[2:7] // representative subset

	fmt.Printf("%-18s  %12s  %10s  %10s  %10s\n",
		"macro", "fJ/MAC", "TOPS/W", "GOPS", "mm^2")
	for _, arch := range []*cimloop.Arch{custom, published} {
		eng, err := cimloop.NewEngine(arch)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.EvaluateNetwork(net, 40, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s  %12.3g  %10.1f  %10.1f  %10.3f\n",
			arch.Name, res.EnergyPerMAC()*1e15, res.TOPSPerW(), res.GOPS(),
			res.AreaUm2/1e6)
	}
	fmt.Println("\nEdit mySpec and re-run: new components, meshes, and reuse")
	fmt.Println("directives change the model without touching library code.")
}
