// Quickstart: model one published CiM macro on one DNN layer and print
// the full energy/area/throughput breakdown — the minimal CiMLoop flow of
// workload -> architecture -> mapping -> estimates.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Macro B: Sinangil et al., 7 nm SRAM 64x64 with an analog adder
	// (paper Table III).
	arch, err := cimloop.Macro("macro-b")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cimloop.NewEngine(arch)
	if err != nil {
		log.Fatal(err)
	}

	net, err := cimloop.NetworkByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	layer := net.Layers[5] // a 3x3 128-channel convolution

	// Search 200 mappings for the lowest-energy schedule.
	res, err := eng.EvaluateLayer(layer, 200, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("macro:        %s\n", arch.Name)
	fmt.Printf("layer:        %s (%d MACs)\n", layer.Name, layer.Op.MACs())
	fmt.Printf("best mapping: %s\n", res.Mapping)
	fmt.Printf("energy:       %.3g J (%.3g fJ/MAC)\n", res.Energy, res.EnergyPerMAC()*1e15)
	fmt.Printf("efficiency:   %.1f TOPS/W\n", res.TOPSPerW())
	fmt.Printf("throughput:   %.1f GOPS\n", res.GOPS())
	fmt.Printf("area:         %.3f mm^2\n", res.AreaUm2/1e6)
	fmt.Printf("utilization:  %.1f%%\n", 100*res.Utilization)
	fmt.Println("\nper-component energy:")
	for _, le := range res.Levels {
		if le.Total == 0 {
			continue
		}
		fmt.Printf("  %-14s %8.3g J  (%.1f%%)\n", le.Name, le.Total, 100*le.Total/res.Energy)
	}
}
