// Codesign: the paper's motivating experiment (Figs. 2a/2b) as a script.
// Sweeping CiM array size shows the lowest-energy *macro* is not the
// lowest-energy *system*; co-optimizing DAC resolution with array size
// beats optimizing either alone.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	net, err := cimloop.NetworkByName("resnet18")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the run quick: a representative layer subset.
	net.Layers = net.Layers[4:10]

	fmt.Println("--- array size sweep (macro vs. system energy, ResNet18 subset) ---")
	fmt.Printf("%-10s  %-16s  %-16s\n", "array", "macro J/MAC", "system J/MAC")
	for _, size := range []int{64, 128, 256, 512} {
		macro, err := cimloop.MacroBase(cimloop.MacroConfig{Rows: size, Cols: size})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := cimloop.BuildSystem(macro, cimloop.WeightStationary, cimloop.SystemConfig{Macros: 1})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := cimloop.NewEngine(sys)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.EvaluateNetwork(net, 20, 0)
		if err != nil {
			log.Fatal(err)
		}
		var macroE, sysE float64
		for i, r := range res.PerLayer {
			rep := float64(net.Layers[i].Repeat)
			for _, le := range r.Levels {
				switch le.Name {
				case "dram", "global_buffer", "router":
				default:
					macroE += le.Total * rep
				}
				sysE += le.Total * rep
			}
		}
		perMAC := 1e15 / float64(res.MACs)
		fmt.Printf("%-10s  %-16.3g  %-16.3g\n",
			fmt.Sprintf("%dx%d", size, size), macroE*perMAC, sysE*perMAC)
	}

	fmt.Println("\n--- co-design: DAC resolution x array size (system energy) ---")
	configs := []struct {
		name    string
		size    int
		dacBits int
	}{
		{"small array, 1b DAC (baseline)", 128, 1},
		{"small array, 4b DAC (circuits)", 128, 4},
		{"large array, 4b DAC (architecture)", 512, 4},
		{"large array, 1b DAC (co-optimized)", 512, 1},
	}
	for _, c := range configs {
		macro, err := cimloop.MacroBase(cimloop.MacroConfig{Rows: c.size, Cols: c.size, DACBits: c.dacBits})
		if err != nil {
			log.Fatal(err)
		}
		sys, err := cimloop.BuildSystem(macro, cimloop.WeightStationary, cimloop.SystemConfig{Macros: 1})
		if err != nil {
			log.Fatal(err)
		}
		eng, err := cimloop.NewEngine(sys)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.EvaluateNetwork(net, 20, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s  %.3g fJ/MAC\n", c.name, res.EnergyPerMAC()*1e15)
	}
}
