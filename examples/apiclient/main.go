// API client example: drive the batch-evaluation service through the
// typed v1 contract and the Go SDK — submit a prioritized async sweep,
// stream its progress over Server-Sent Events, and read the terminal
// snapshot. The service runs in-process behind httptest so the example
// is self-contained, but client.New works identically against a real
// `cimloop serve -addr :8080`.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"repro"
)

func main() {
	// A real deployment runs `cimloop serve`; here the same handler sits
	// behind httptest.
	srv := cimloop.NewServer(cimloop.BatchOptions{Workers: 2, AsyncThreshold: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := cimloop.NewClient(ts.URL)
	ctx := context.Background()

	// One synchronous evaluation through the typed contract.
	res, err := c.Evaluate(ctx, cimloop.EvalRequest{Macro: "macro-b", Network: "toy", MaxMappings: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %.3g J (%.3g TOPS/W)\n", res.Tag, res.EnergyJ, res.TOPSPerW)

	// An interactive-class async sweep: it would jump ahead of any queued
	// batch-class overnight sweeps.
	acc, err := c.SubmitJob(ctx, cimloop.SweepRequest{
		Macros:   []string{"base", "macro-b"},
		Networks: []string{"toy"},
		Layers:   2, MaxMappings: 4,
		Priority: cimloop.JobInteractive,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %s (%s): events at %s\n", acc.Job.ID, acc.Job.Priority, acc.EventsURL)

	// Wait via SSE (the SDK falls back to polling only if the stream is
	// unavailable), observing every progress event.
	final, err := c.WaitJob(ctx, acc.Job.ID, cimloop.WaitOptions{
		OnTransport: func(transport string) { fmt.Printf("progress transport: %s\n", transport) },
		OnEvent: func(ev cimloop.JobEvent) {
			fmt.Printf("  %s: %s %d/%d (v%d)\n", ev.Job.ID, ev.Job.Status, ev.Job.Completed, ev.Job.Total, ev.Job.Version)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if table, ok := final.Result.(string); ok {
		fmt.Println(table)
	}

	// Structured errors: stable machine-readable codes instead of string
	// matching.
	if _, err := c.Job(ctx, "job-999999"); err != nil {
		var apiErr *cimloop.APIError
		if errors.As(err, &apiErr) {
			fmt.Printf("typed error: code=%s http=%d\n", apiErr.Code, apiErr.HTTPStatus)
		}
	}
}
