package cimloop

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/macros"
	"repro/internal/mapper"
	"repro/internal/valuesim"
	"repro/internal/workload"
)

// benchOpts keeps per-iteration work bounded so the full bench suite
// completes in minutes while still regenerating every figure's series.
func benchOpts() experiments.Options {
	return experiments.Options{Fast: true, Seed: 1, Workers: 4}
}

// benchExperiment runs one paper artifact end to end per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per table and figure in the paper's evaluation.

func BenchmarkFig2a(b *testing.B)  { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationAmortization(b *testing.B) { benchExperiment(b, "ablation-amortization") }
func BenchmarkAblationJointVsIndependent(b *testing.B) {
	benchExperiment(b, "ablation-joint")
}

// Micro-benchmarks isolating the model's hot paths.

func benchEngine(b *testing.B) (*core.Engine, *core.LayerContext) {
	b.Helper()
	arch, err := macros.Base(macros.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := eng.PrepareLayer(workload.ResNet18().Layers[5])
	if err != nil {
		b.Fatal(err)
	}
	return eng, ctx
}

// BenchmarkPrepareLayer measures the per-layer data-value-dependent setup
// (Algorithm 1 lines 3-7), which is amortized over mappings.
func BenchmarkPrepareLayer(b *testing.B) {
	eng, _ := benchEngine(b)
	layer := workload.ResNet18().Layers[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.PrepareLayer(layer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateMapping measures the per-mapping cost (Algorithm 1
// lines 8-10) — the loop that dominates design-space exploration.
func BenchmarkEvaluateMapping(b *testing.B) {
	eng, ctx := benchEngine(b)
	m, err := eng.GreedyMapping(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateMapping(ctx, m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapperSample measures candidate mapping generation throughput.
func BenchmarkMapperSample(b *testing.B) {
	eng, ctx := benchEngine(b)
	opts := eng.Arch().MapperOptions(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := mapper.Sample(eng.Arch().Levels, ctx.Sliced, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkMapperSampleSharded measures candidate generation throughput
// with the generator split across 8 concurrent shard rngs — the sampler
// ceiling the parallel search benches used to hit.
func BenchmarkMapperSampleSharded(b *testing.B) {
	eng, ctx := benchEngine(b)
	opts := eng.Arch().MapperOptions(64, 1)
	opts.Shards = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := mapper.Sample(eng.Arch().Levels, ctx.Sliced, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) == 0 {
			b.Fatal("no mappings")
		}
	}
}

// BenchmarkValueSimulator measures the value-level ground truth: the slow
// path the statistical model replaces (Table II's left column).
func BenchmarkValueSimulator(b *testing.B) {
	arch, err := macros.Base(macros.Config{Rows: 32, Cols: 16})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		b.Fatal(err)
	}
	layer := workload.ResNet18().Layers[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := valuesim.Simulate(eng, layer, valuesim.Config{Steps: 8, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkEvaluation measures a full ResNet18 sweep at a small
// mapping budget: the end-to-end exploration workload.
func BenchmarkNetworkEvaluation(b *testing.B) {
	arch, err := macros.Base(macros.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewEngine(arch)
	if err != nil {
		b.Fatal(err)
	}
	net := workload.ResNet18()
	net.Layers = net.Layers[:6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateNetwork(net, 8, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// Intra-request mapping-search parallelism: one layer, a large candidate
// budget, serial vs fanned evaluation. The parallel variants shard the
// candidate generator to match the worker count (SampleShards = workers),
// so neither sampling nor evaluation is serialized; results stay
// deterministic for a given (Seed, shards). Serial keeps the single
// generator stream. CI's benchmark gate compares Serial vs Parallel8
// (see BENCH_baseline.json and cmd/benchgate).

// searchBudget is large enough that per-candidate evaluation dominates
// the serial sampler (Amdahl headroom for the fan-out).
const searchBudget = 256

func benchSearchLayer(b *testing.B, workers int) {
	b.Helper()
	eng, lctx := benchEngine(b)
	ctx := context.Background()
	shards := 0
	if workers > 1 {
		shards = workers
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, evaluated, err := eng.SearchLayerOptsCtx(ctx, lctx, core.SearchOptions{
			MaxMappings: searchBudget, Seed: 1, SearchWorkers: workers, SampleShards: shards})
		if err != nil {
			b.Fatal(err)
		}
		if r == nil || evaluated == 0 {
			b.Fatal("empty search")
		}
		if i == 0 {
			b.ReportMetric(float64(evaluated), "cands")
		}
	}
}

func BenchmarkSearchLayerSerial(b *testing.B)    { benchSearchLayer(b, 1) }
func BenchmarkSearchLayerParallel2(b *testing.B) { benchSearchLayer(b, 2) }
func BenchmarkSearchLayerParallel4(b *testing.B) { benchSearchLayer(b, 4) }
func BenchmarkSearchLayerParallel8(b *testing.B) { benchSearchLayer(b, 8) }

// BenchmarkEvaluateRequestParallel measures the serve path end to end
// with intra-request fan-out on a warm cache: the single-request latency
// a client of /v1/evaluate sees with "search_workers" set.
func BenchmarkEvaluateRequestParallel(b *testing.B) {
	srv := NewServer(BatchOptions{SearchWorkers: 8})
	req := EvalRequest{Macro: "base", Network: "toy", MaxMappings: searchBudget}
	if _, err := srv.Evaluate(req); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Evaluate(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMappingsPerSecond reports the paper's Table II headline metric
// directly as mappings/sec on one core.
func BenchmarkMappingsPerSecond(b *testing.B) {
	eng, ctx := benchEngine(b)
	cands, err := mapper.Sample(eng.Arch().Levels, ctx.Sliced, eng.Arch().MapperOptions(256, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateMapping(ctx, cands[i%len(cands)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "mappings/s")
}

// Batch-service benchmarks: the cross-request amortization of package
// serve. The sweep grid is 3 macros x 2 networks with a small mapping
// budget, so per-layer setup (what the cache elides) dominates.

// benchSweepGrid is the 3-macro x 2-network grid the serve benchmarks run.
func benchSweepGrid() []EvalRequest {
	return SweepGrid(
		[]string{"base", "macro-b", "macro-d"},
		[]string{"toy", "mobilenetv3-large"},
		nil,
		2, // first layers of each network
		4, // small mapping budget: setup dominates
	)
}

func runSweep(b *testing.B, srv *Server, workers int) {
	b.Helper()
	results, err := srv.SweepN(benchSweepGrid(), workers)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range results {
		if r.Err != "" {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkSweepColdCache measures a first-contact sweep: every request
// compiles its engine and prepares every layer context.
func BenchmarkSweepColdCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv := NewServer(BatchOptions{Workers: 1})
		runSweep(b, srv, 1)
	}
}

// BenchmarkSweepWarmCache measures the same sweep against a warmed cache:
// engines and layer contexts are shared, only mapping search runs.
func BenchmarkSweepWarmCache(b *testing.B) {
	srv := NewServer(BatchOptions{Workers: 1})
	runSweep(b, srv, 1) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep(b, srv, 1)
	}
}

// BenchmarkSweepWarmFromDisk measures a restart with a populated cache
// dir: each iteration boots a fresh server (scan + decode + admit) and
// runs the sweep from the restored entries. The delta against
// BenchmarkSweepColdCache is the warm-start win — decoding plain-data
// energy tables instead of re-running the per-layer pipeline — and the
// delta against BenchmarkSweepWarmCache is the disk round trip's price.
// CI's benchmark gate asserts ColdCache/WarmFromDisk stays above
// -min-warm-speedup (see cmd/benchgate).
func BenchmarkSweepWarmFromDisk(b *testing.B) {
	dir := b.TempDir()
	seed := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
	runSweep(b, seed, 1)
	seed.Close() // flush the write-behind queue
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv := NewServer(BatchOptions{Workers: 1, CacheDir: dir})
		runSweep(b, srv, 1)
		b.StopTimer()
		srv.Close() // teardown (writer drain) off the clock
		b.StartTimer()
	}
}

// BenchmarkSweep1Worker and BenchmarkSweepNWorkers measure the worker
// pool's scaling on a warm cache, so the comparison isolates the
// executor (mapping search fan-out) from one-time compile costs. The
// cold-cache 1-worker baseline is BenchmarkSweepColdCache above.
func BenchmarkSweep1Worker(b *testing.B) {
	srv := NewServer(BatchOptions{})
	runSweep(b, srv, 1) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep(b, srv, 1)
	}
}

func BenchmarkSweepNWorkers(b *testing.B) {
	srv := NewServer(BatchOptions{})
	runSweep(b, srv, 0) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep(b, srv, 0) // 0 = one per CPU
	}
}

// BenchmarkJobsThroughput measures the async path end to end on a warm
// cache: submit a sweep job, stream its progress, wait for the terminal
// state. The delta against BenchmarkSweepWarmCache is the job-store
// overhead (queue handoff, progress bookkeeping, snapshotting).
func BenchmarkJobsThroughput(b *testing.B) {
	srv := NewServer(BatchOptions{Workers: 1, MaxQueuedJobs: 2, JobRetention: 4})
	defer srv.Close()
	runSweep(b, srv, 1) // prime the cache
	ctx := context.Background()
	grid := benchSweepGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := srv.SubmitSweep(grid, 1)
		if err != nil {
			b.Fatal(err)
		}
		final, err := srv.WaitJob(ctx, snap.ID)
		if err != nil {
			b.Fatal(err)
		}
		if final.Status != JobSucceeded || final.Completed != len(grid) {
			b.Fatalf("job finished %s %d/%d", final.Status, final.Completed, final.Total)
		}
	}
	b.ReportMetric(float64(b.N*len(grid))/b.Elapsed().Seconds(), "griditems/s")
}

// BenchmarkJobStoreChurn isolates the store itself: submit/run/evict
// no-op jobs as fast as the runner drains them, with retention doing
// constant eviction work.
func BenchmarkJobStoreChurn(b *testing.B) {
	srv := NewServer(BatchOptions{MaxQueuedJobs: 256, JobRetention: 16})
	defer srv.Close()
	reqs := []EvalRequest{{Macro: "base", Network: "toy", MaxMappings: 1}}
	ctx := context.Background()
	// Prime so the engine/context compile cost is off the clock.
	snap, err := srv.SubmitSweep(reqs, 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.WaitJob(ctx, snap.ID); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := srv.SubmitSweep(reqs, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.WaitJob(ctx, snap.ID); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// Example-style sanity: the facade compiles and evaluates end to end.
func BenchmarkFacadeQuickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch, err := Macro("macro-b")
		if err != nil {
			b.Fatal(err)
		}
		eng, err := NewEngine(arch)
		if err != nil {
			b.Fatal(err)
		}
		net, err := MaxUtilization(64, 64, 16)
		if err != nil {
			b.Fatal(err)
		}
		r, err := eng.EvaluateLayer(net.Layers[0], 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		if r.Energy <= 0 {
			b.Fatal("no energy")
		}
	}
}
