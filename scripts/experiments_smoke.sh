#!/usr/bin/env bash
# Declarative-experiments smoke test: the sweeps/ YAML subsystem end to
# end with the real binary:
#   - `cimloop sweeps validate` over the checked-in sweeps/ directory
#   - an offline `cimloop sweeps run` with a parameter binding
#   - a serve instance booted with -sweeps: GET /v1/experiments lists
#     the definitions with parameter schemas, POST /v1/experiments/{name}
#     binds parameters and runs (including the typed 400/404 errors)
#   - an async run (202 + job) resumed through the normal jobs API
#   - SIGHUP reload: a new definition appears without a restart; a
#     broken one is rejected and the old set stays live
#
# Run from the repo root:  ./scripts/experiments_smoke.sh
# Needs: go, curl, jq.
set -euo pipefail

ADDR="127.0.0.1:18101"
BASE="http://$ADDR"
WORK=$(mktemp -d)
BIN="$WORK/cimloop"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "experiments_smoke: FAIL — $*" >&2; exit 1; }

echo "experiments_smoke: building cimloop"
go build -o "$BIN" ./cmd/cimloop

echo "experiments_smoke: validating the checked-in sweeps/ directory"
OUT=$("$BIN" sweeps validate ./sweeps) || fail "checked-in definitions do not validate"
[ "$(echo "$OUT" | grep -c '^ok:')" -ge 6 ] || fail "expected >= 6 definitions, got: $OUT"

echo "experiments_smoke: offline run with a parameter binding"
OUT=$("$BIN" sweeps run quick-smoke -p mappings=2) || fail "offline run"
echo "$OUT" | grep -q "digital-cim" || fail "offline run table missing a grid row: $OUT"

# Serve a COPY of sweeps/ so the SIGHUP experiment below can mutate it.
cp -r ./sweeps "$WORK/sweeps"
"$BIN" serve -addr "$ADDR" -sweeps "$WORK/sweeps" &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy"

echo "experiments_smoke: listing with parameter schemas"
LIST=$(curl -sf "$BASE/v1/experiments") || fail "GET /v1/experiments"
[ "$(echo "$LIST" | jq '.definitions | length')" -ge 6 ] || fail "listing missing definitions: $LIST"
echo "$LIST" | jq -e '.definitions[] | select(.name == "quick-smoke") | .params[0].name == "mappings"' >/dev/null \
  || fail "quick-smoke parameter schema missing: $LIST"
"$BIN" sweeps ls -addr "$BASE" | grep -q "quick-smoke" || fail "sweeps ls against the server"

echo "experiments_smoke: named run with parameter binding"
RESP=$(curl -sf -X POST "$BASE/v1/experiments/quick-smoke" \
  -d '{"params": {"mappings": 3}}') || fail "POST /v1/experiments/quick-smoke"
[ "$(echo "$RESP" | jq '.results | length')" = 2 ] || fail "bound run results: $RESP"
"$BIN" sweeps run quick-smoke -addr "$BASE" -p mappings=2 | grep -q "digital-cim" \
  || fail "sweeps run against the server"

echo "experiments_smoke: typed errors"
CODE=$(curl -s -X POST "$BASE/v1/experiments/no-such-definition" | jq -r .code)
[ "$CODE" = not_found ] || fail "unknown definition code was $CODE"
CODE=$(curl -s -X POST "$BASE/v1/experiments/quick-smoke" -d '{"params": {"mappings": 999}}' | jq -r .code)
[ "$CODE" = invalid_request ] || fail "out-of-range binding code was $CODE"

echo "experiments_smoke: async run resumed via the jobs API"
ACC=$(curl -sf -X POST "$BASE/v1/experiments/quick-smoke" -d '{"async": true}') || fail "async run"
JOB=$(echo "$ACC" | jq -r .job.id)
[ "$JOB" != null ] || fail "202 body carried no job: $ACC"
# The definition declares priority: interactive; the job must inherit it.
[ "$(echo "$ACC" | jq -r .job.priority)" = interactive ] || fail "job did not inherit the definition's class: $ACC"
"$BIN" jobs wait "$JOB" -addr "$BASE" -timeout 120s >/dev/null 2>&1 || fail "async job did not succeed"

echo "experiments_smoke: SIGHUP reload adds a definition without a restart"
cat > "$WORK/sweeps/hup-added.yaml" <<'EOF'
name: hup-added
description: definition added at runtime via SIGHUP
axes:
  macros: [base]
  networks: [toy]
budgets:
  max_mappings: 2
EOF
kill -HUP "$PID"
for _ in $(seq 1 50); do
  curl -sf "$BASE/v1/experiments" | jq -e '.definitions[] | select(.name == "hup-added")' >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BASE/v1/experiments" | jq -e '.definitions[] | select(.name == "hup-added")' >/dev/null \
  || fail "SIGHUP did not register the new definition"

echo "experiments_smoke: a broken definition is rejected, old set stays live"
echo "name: [" > "$WORK/sweeps/broken.yaml"
kill -HUP "$PID"
for _ in $(seq 1 50); do
  ERRS=$(curl -sf "$BASE/healthz" | jq -r '.obs.sweep_reload_errors // 0')
  [ "$ERRS" -ge 1 ] && break
  sleep 0.1
done
[ "${ERRS:-0}" -ge 1 ] || fail "failed reload was not counted"
curl -sf "$BASE/v1/experiments" | jq -e '.definitions[] | select(.name == "hup-added")' >/dev/null \
  || fail "failed reload dropped the previous set"

kill -TERM "$PID" && wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""
echo "experiments_smoke: PASS — validated, ran offline and served, bound params, async via jobs, SIGHUP reloaded"
