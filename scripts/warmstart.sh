#!/usr/bin/env bash
# Warm-start integration check: boot `cimloop serve` against persistence
# dirs, populate the cache and finish a job, restart the process, and
# assert the second instance (a) admits the persisted entries, (b) serves
# the repeated request purely from cache (zero misses), and (c) still
# answers /v1/jobs/{id} for the job finished before the restart.
#
# Run from the repo root:  ./scripts/warmstart.sh
# Needs: go, curl, jq.
set -euo pipefail

ADDR="127.0.0.1:18097"
BASE="http://$ADDR"
WORK=$(mktemp -d)
CACHE_DIR="$WORK/cache"
JOBS_DIR="$WORK/jobs"
BIN="$WORK/cimloop"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "warmstart: FAIL — $*" >&2; exit 1; }

start_server() {
  "$BIN" serve -addr "$ADDR" -workers 2 -cache-dir "$CACHE_DIR" -jobs-dir "$JOBS_DIR" &
  PID=$!
  for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
  done
  fail "server did not become healthy"
}

stop_server() {
  # SIGTERM: the server drains, flushes the write-behind queues, and
  # keeps interrupted jobs' WAL records for the next boot.
  kill -TERM "$PID"
  wait "$PID" || fail "server exited non-zero on SIGTERM"
  PID=""
}

echo "warmstart: building cimloop"
go build -o "$BIN" ./cmd/cimloop

EVAL_BODY='{"macro": "base", "network": "toy", "max_mappings": 4}'

echo "warmstart: first instance — populate cache and run a job"
start_server
curl -sf "$BASE/v1/evaluate" -d "$EVAL_BODY" >/dev/null || fail "evaluate failed"

JOB_ID=$(curl -sf "$BASE/v1/jobs" \
  -d '{"macros": ["base"], "networks": ["toy"], "layers": 1, "max_mappings": 2, "timeout_sec": 60}' \
  | jq -r .job.id)
[ -n "$JOB_ID" ] && [ "$JOB_ID" != null ] || fail "job submission returned no ID"

for _ in $(seq 1 300); do
  STATUS=$(curl -sf "$BASE/v1/jobs/$JOB_ID" | jq -r .status)
  [ "$STATUS" = succeeded ] && break
  case "$STATUS" in failed|cancelled) fail "job $JOB_ID finished $STATUS";; esac
  sleep 0.2
done
[ "$STATUS" = succeeded ] || fail "job $JOB_ID still $STATUS"
stop_server

[ -n "$(find "$CACHE_DIR" -mindepth 1 -print -quit)" ] || fail "cache dir is empty after shutdown"
[ -n "$(find "$JOBS_DIR" -mindepth 1 -print -quit)" ] || fail "jobs dir is empty after shutdown"

echo "warmstart: second instance — must start warm"
start_server
HEALTH=$(curl -sf "$BASE/healthz")
WARM_ENGINES=$(echo "$HEALTH" | jq .persist.warm.engines)
WARM_CONTEXTS=$(echo "$HEALTH" | jq .persist.warm.contexts)
WARM_JOBS=$(echo "$HEALTH" | jq .persist.warm.jobs)
RESTORED=$(echo "$HEALTH" | jq .cache.restored)
[ "$WARM_ENGINES" -ge 1 ] || fail "no engines restored (healthz: $HEALTH)"
[ "$WARM_CONTEXTS" -ge 1 ] || fail "no layer contexts restored"
[ "$WARM_JOBS" -ge 1 ] || fail "finished job not restored"
[ "$RESTORED" -ge 2 ] || fail "cache admitted $RESTORED entries"

# The exact request served before the restart must be a pure cache hit:
# hit counters move, misses stay zero (nothing recompiled).
curl -sf "$BASE/v1/evaluate" -d "$EVAL_BODY" >/dev/null || fail "post-restart evaluate failed"
CACHE=$(curl -sf "$BASE/healthz" | jq .cache)
HITS=$(echo "$CACHE" | jq .hits)
MISSES=$(echo "$CACHE" | jq .misses)
[ "$HITS" -ge 2 ] || fail "expected warm hits, cache: $CACHE"
[ "$MISSES" -eq 0 ] || fail "restarted instance recompiled ($MISSES misses), cache: $CACHE"

# The pre-restart job is still answerable, terminal, with its result.
SNAP=$(curl -sf "$BASE/v1/jobs/$JOB_ID")
[ "$(echo "$SNAP" | jq -r .status)" = succeeded ] || fail "restored job snapshot: $SNAP"
echo "$SNAP" | jq -e '.result | length > 0' >/dev/null || fail "restored job lost its result"

stop_server
echo "warmstart: PASS — $WARM_ENGINES engines, $WARM_CONTEXTS contexts, $WARM_JOBS jobs restored; $HITS hits, 0 misses after restart"
