#!/usr/bin/env bash
# v1 API smoke test: boot `cimloop serve` and drive the typed contract
# end to end through the SDK-backed CLI plus raw curl:
#   - error envelopes with stable codes on unknown routes/methods and
#     oversized bodies (never net/http plain text)
#   - prioritized job submission: an interactive job submitted behind a
#     queued batch sweep starts (and finishes) first
#   - `cimloop jobs wait` receives progress via SSE (not polling), and a
#     raw curl of /v1/jobs/{id}/events sees framed terminal events
#   - paginated job listing with a monotonic-ID cursor
#
# Run from the repo root:  ./scripts/api_smoke.sh
# Needs: go, curl, jq.
set -euo pipefail

ADDR="127.0.0.1:18098"
BASE="http://$ADDR"
WORK=$(mktemp -d)
BIN="$WORK/cimloop"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "api_smoke: FAIL — $*" >&2; exit 1; }

echo "api_smoke: building cimloop"
go build -o "$BIN" ./cmd/cimloop

# One worker + one running job, size-based async promotion off: the
# priority experiment below needs a deterministically occupied runner.
"$BIN" serve -addr "$ADDR" -workers 1 -async-threshold -1 -max-body 4096 &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy"

echo "api_smoke: error envelopes"
CODE=$(curl -s "$BASE/no/such/route" | jq -r .code)
[ "$CODE" = not_found ] || fail "404 code was $CODE, not not_found"
CT=$(curl -s -o /dev/null -w '%{content_type}' "$BASE/no/such/route")
[ "$CT" = application/json ] || fail "404 content-type was $CT"
CODE=$(curl -s -X DELETE "$BASE/v1/jobs" | jq -r .code)
[ "$CODE" = method_not_allowed ] || fail "405 code was $CODE"
BIG="{\"tag\": \"$(head -c 8192 /dev/zero | tr '\0' 'x')\"}"
CODE=$(printf '%s' "$BIG" | curl -s -X POST --data-binary @- "$BASE/v1/evaluate" | jq -r .code)
[ "$CODE" = invalid_request ] || fail "413 code was $CODE"
CODE=$(curl -s "$BASE/v1/jobs?status=bogus" | jq -r .code)
[ "$CODE" = invalid_request ] || fail "bad filter code was $CODE"

echo "api_smoke: priority — interactive overtakes a queued batch sweep"
# Heavy batch job #1 occupies the single runner...
"$BIN" jobs submit -addr "$BASE" -priority batch \
  -macros base,macro-a,macro-b,macro-d -networks resnet18 -mappings 400 \
  >/dev/null || fail "batch submit 1"
# ...heavy batch job #2 queues behind it...
"$BIN" jobs submit -addr "$BASE" -priority batch \
  -macros base,macro-a,macro-b,macro-d -networks resnet18 -mappings 400 \
  >/dev/null || fail "batch submit 2"
# ...and a small interactive job arrives last.
"$BIN" jobs submit -addr "$BASE" -priority interactive \
  -macros base -networks toy -layers 1 -mappings 2 \
  >/dev/null || fail "interactive submit"

[ "$(curl -s "$BASE/v1/jobs/job-000003" | jq -r .priority)" = interactive ] \
  || fail "job 3 did not record its class"

# Free the runner: the scheduler must now pick the interactive job, not
# batch job #2.
curl -sf -X POST "$BASE/v1/jobs/job-000001/cancel" >/dev/null || fail "cancel job 1"

echo "api_smoke: jobs wait streams via SSE"
WAITLOG="$WORK/wait.log"
"$BIN" jobs wait job-000003 -addr "$BASE" -timeout 120s 2>"$WAITLOG" \
  || { cat "$WAITLOG" >&2; fail "interactive job did not succeed"; }
grep -q "streaming progress via SSE" "$WAITLOG" || { cat "$WAITLOG" >&2; fail "wait did not use SSE"; }
grep -q "job-000003" "$WAITLOG" || fail "wait logged no progress events"

# The heavyweight batch sweep queued before the interactive job must not
# have finished first — priority dispatch, not FIFO.
BATCH2=$(curl -s "$BASE/v1/jobs/job-000002" | jq -r .status)
[ "$BATCH2" != succeeded ] || fail "batch job finished before the interactive one (FIFO?)"
curl -sf -X POST "$BASE/v1/jobs/job-000002/cancel" >/dev/null || fail "cancel job 2"

echo "api_smoke: raw SSE frames and terminal snapshot"
EVENTS=$(curl -sN -m 10 "$BASE/v1/jobs/job-000003/events") || fail "SSE curl failed"
echo "$EVENTS" | grep -q "^event: terminal" || fail "no terminal SSE frame: $EVENTS"
echo "$EVENTS" | grep -q '"status":"succeeded"' || fail "terminal frame not succeeded: $EVENTS"
SNAP=$(curl -sf "$BASE/v1/jobs/job-000003")
[ "$(echo "$SNAP" | jq -r .status)" = succeeded ] || fail "terminal snapshot: $SNAP"
echo "$SNAP" | jq -e '.result | length > 0' >/dev/null || fail "terminal snapshot lost its table"

echo "api_smoke: paginated listing"
PAGE=$(curl -sf "$BASE/v1/jobs?limit=2")
[ "$(echo "$PAGE" | jq '.jobs | length')" = 2 ] || fail "page size: $PAGE"
CURSOR=$(echo "$PAGE" | jq -r .next_cursor)
[ "$CURSOR" = job-000002 ] || fail "next_cursor was $CURSOR"
PAGE2=$(curl -sf "$BASE/v1/jobs?limit=2&cursor=$CURSOR")
[ "$(echo "$PAGE2" | jq -r '.jobs[0].id')" = job-000003 ] || fail "cursor page: $PAGE2"
"$BIN" jobs list -addr "$BASE" -status cancelled >/dev/null || fail "filtered CLI list"

kill -TERM "$PID" && wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""
echo "api_smoke: PASS — envelopes typed, interactive beat batch, SSE streamed, listing paged"
