#!/usr/bin/env bash
# Cluster smoke test: boot a shared blob tier (`cimloop blobd`) plus a
# three-node `cimloop serve` ring over it and prove the deployment story
# end to end with the real binary:
#   - a cold compile on node A warm-starts B and C through the blob tier
#     (their compile counters stay at zero)
#   - unpinned requests forward to their ring owner (X-Cimloop-Forwarded-To)
#   - `cimloop cluster status` renders membership, health, and the tier
#   - killing a node leaves the ring serving (forward falls back local)
#   - killing the blob tier degrades gracefully: requests keep
#     succeeding from local tiers and /v1/cluster reports the tier
#     unhealthy
#
# Run from the repo root:  ./scripts/cluster_smoke.sh
# Needs: go, curl, jq.
set -euo pipefail

BLOB_ADDR="127.0.0.1:18190"
A_ADDR="127.0.0.1:18191"
B_ADDR="127.0.0.1:18192"
C_ADDR="127.0.0.1:18193"
BLOB="http://$BLOB_ADDR"
A="http://$A_ADDR"
B="http://$B_ADDR"
C="http://$C_ADDR"
PEERS="node-a=$A,node-b=$B,node-c=$C"
WORK=$(mktemp -d)
BIN="$WORK/cimloop"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "cluster_smoke: FAIL — $*" >&2; exit 1; }

wait_healthy() { # url name
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  fail "$2 never became healthy"
}

# Evaluate $2 on node $1; extra curl args pass through (e.g. the pin
# header). Prints the response headers+body (curl -si).
evaluate() { # base macro [curl args...]
  local base=$1 macro=$2; shift 2
  curl -si -X POST "$base/v1/evaluate" -H 'Content-Type: application/json' "$@" \
    --data "{\"macro\":\"$macro\",\"network\":\"toy\",\"max_mappings\":2}"
}

compiles() { curl -sf "$1/healthz" | jq -r .cache.compiles; }

echo "cluster_smoke: building cimloop"
go build -o "$BIN" ./cmd/cimloop

echo "cluster_smoke: booting blob tier + 3-node ring"
"$BIN" blobd -addr "$BLOB_ADDR" -dir "$WORK/blob" & PIDS+=("$!")
for _ in $(seq 1 100); do
  curl -sf "$BLOB/" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "$BLOB/" >/dev/null || fail "blobd never came up"

"$BIN" serve -addr "$A_ADDR" -workers 1 -async-threshold -1 \
  -node-id node-a -peers "$PEERS" -blob "$BLOB" & PIDS+=("$!")
"$BIN" serve -addr "$B_ADDR" -workers 1 -async-threshold -1 \
  -node-id node-b -peers "$PEERS" -blob "$BLOB" & PIDS+=("$!")
"$BIN" serve -addr "$C_ADDR" -workers 1 -async-threshold -1 \
  -node-id node-c -peers "$PEERS" -blob "$BLOB" & C_PID=$!; PIDS+=("$C_PID")
wait_healthy "$A" node-a; wait_healthy "$B" node-b; wait_healthy "$C" node-c

echo "cluster_smoke: cold compile on A, warm-share to B and C"
# The X-Cimloop-Forwarded hop guard pins each request to the node it
# lands on, so we control exactly who compiles.
OUT=$(evaluate "$A" base -H 'X-Cimloop-Forwarded: smoke')
echo "$OUT" | head -1 | grep -q ' 200 ' || fail "cold evaluate on A: $(echo "$OUT" | head -1)"
[ "$(compiles "$A")" -gt 0 ] || fail "A compiled nothing"

# A's write-through to the tier is write-behind: wait until the object
# count settles (engine + per-layer contexts).
LAST=-1
for _ in $(seq 1 100); do
  N=$(curl -sf "$BLOB/" | jq -r .objects)
  [ "$N" -ge 2 ] && [ "$N" = "$LAST" ] && break
  LAST=$N
  sleep 0.2
done
[ "$N" -ge 2 ] || fail "blob tier never filled (objects=$N)"

for NODE in "$B:node-b" "$C:node-c"; do
  BASE=${NODE%:*}; NAME=${NODE#*:}
  OUT=$(evaluate "$BASE" base -H 'X-Cimloop-Forwarded: smoke')
  echo "$OUT" | head -1 | grep -q ' 200 ' || fail "warm evaluate on $NAME"
  [ "$(compiles "$BASE")" = 0 ] || fail "$NAME recompiled (compiles=$(compiles "$BASE")) — warm share broken"
done
echo "cluster_smoke: B and C served with zero compiles"

echo "cluster_smoke: unpinned requests forward to the ring owner"
# "base" has exactly one owner, so of three unpinned sends (one per
# node) exactly two must carry the forwarded-to marker.
FWD=0
for BASE in "$A" "$B" "$C"; do
  OUT=$(evaluate "$BASE" base)
  echo "$OUT" | head -1 | grep -q ' 200 ' || fail "unpinned evaluate via $BASE"
  echo "$OUT" | grep -qi '^X-Cimloop-Forwarded-To:' && FWD=$((FWD+1))
done
[ "$FWD" = 2 ] || fail "expected 2 forwarded sends out of 3, saw $FWD"

echo "cluster_smoke: cluster status CLI"
STATUS=$("$BIN" cluster status -addr "$A")
for NAME in node-a node-b node-c; do
  echo "$STATUS" | grep -q "$NAME" || fail "cluster status missing $NAME: $STATUS"
done
echo "$STATUS" | grep -q "blob tier $BLOB: healthy" || fail "blob tier not healthy in: $STATUS"

echo "cluster_smoke: killing node-c — ring keeps serving"
kill "$C_PID"; wait "$C_PID" 2>/dev/null || true
for BASE in "$A" "$B"; do
  OUT=$(evaluate "$BASE" base)
  echo "$OUT" | head -1 | grep -q ' 200 ' || fail "evaluate via $BASE after node-c died"
done

echo "cluster_smoke: killing blob tier — nodes degrade to local tiers"
kill "${PIDS[0]}"; wait "${PIDS[0]}" 2>/dev/null || true
# Fresh macros force remote lookups; each failure feeds the breaker
# until /v1/cluster reports the tier down. Requests must keep working.
UNHEALTHY=""
for _ in $(seq 1 50); do
  for MACRO in macro-a macro-b macro-c; do
    OUT=$(evaluate "$A" "$MACRO" -H 'X-Cimloop-Forwarded: smoke')
    echo "$OUT" | head -1 | grep -q ' 200 ' || fail "evaluate during blob outage"
  done
  if [ "$(curl -sf "$A/v1/cluster" | jq -r .blob.healthy)" = false ]; then
    UNHEALTHY=yes; break
  fi
  sleep 0.2
done
[ -n "$UNHEALTHY" ] || fail "/v1/cluster never reported the blob tier unhealthy"

kill -TERM "${PIDS[1]}" && wait "${PIDS[1]}" || fail "node-a exited non-zero on SIGTERM"
kill -TERM "${PIDS[2]}" && wait "${PIDS[2]}" || fail "node-b exited non-zero on SIGTERM"
PIDS=()
echo "cluster_smoke: PASS — warm share across nodes, owner forwarding, graceful degradation"
