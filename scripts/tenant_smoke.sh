#!/usr/bin/env bash
# Multi-tenant smoke test: boot `cimloop serve` with a tenant file and
# prove the tenancy hardening end to end with the real binary:
#   - requests without / with a bad bearer token get the 401
#     `unauthorized` envelope (plus a WWW-Authenticate challenge);
#     /healthz stays open for probes
#   - a batch sweep from tenant A is preempted at an item boundary by an
#     interactive job from tenant B, then resumes and finishes without
#     re-evaluating its finished items — proven by the server's
#     mappings_evaluated counter moving by exactly the sum of the two
#     undisturbed runs
#   - a tenant at its max_pending quota gets a per-tenant 429 naming the
#     tenant, while the other tenant keeps submitting
#
# Run from the repo root:  ./scripts/tenant_smoke.sh
# Needs: go, curl, jq.
set -euo pipefail

ADDR="127.0.0.1:18099"
BASE="http://$ADDR"
WORK=$(mktemp -d)
BIN="$WORK/cimloop"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "tenant_smoke: FAIL — $*" >&2; exit 1; }

echo "tenant_smoke: building cimloop"
go build -o "$BIN" ./cmd/cimloop

cat > "$WORK/tenants.yaml" <<'EOF'
tenants:
  - id: team-a
    token: secret-a
    weight: 2
    max_pending: 1
  - id: team-b
    token: secret-b
EOF

# One worker + one running job, size-based async promotion off: the
# preemption experiment needs a deterministically occupied runner.
"$BIN" serve -addr "$ADDR" -workers 1 -async-threshold -1 \
  -tenants "$WORK/tenants.yaml" -jobs-dir "$WORK/jobs" &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy (is /healthz gated?)"

echo "tenant_smoke: auth — 401 envelopes, open healthz"
CODE=$(curl -s "$BASE/v1/macros" | jq -r .code)
[ "$CODE" = unauthorized ] || fail "missing token code was $CODE, not unauthorized"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/macros")
[ "$STATUS" = 401 ] || fail "missing token status was $STATUS"
HDRS=$(curl -si "$BASE/v1/macros")
echo "$HDRS" | grep -qi '^www-authenticate: bearer' \
  || fail "401 carried no WWW-Authenticate challenge"
CODE=$(curl -s -H "Authorization: Bearer wrong-token" "$BASE/v1/macros" | jq -r .code)
[ "$CODE" = unauthorized ] || fail "bad token code was $CODE, not unauthorized"
CODE=$(curl -s -H "Authorization: Bearer secret-a" "$BASE/v1/macros" | jq -r '.code // "ok"')
[ "$CODE" = ok ] || fail "good token was rejected: $CODE"
"$BIN" jobs list -addr "$BASE" -token secret-a >/dev/null || fail "authenticated CLI list"

# mappings counts the server's lifetime mappings_evaluated.
mappings() { curl -sf "$BASE/healthz" | jq -r .search.mappings_evaluated; }

# The two workloads of the preemption experiment, first measured alone.
# The batch sweep is 4 slow items so yield points remain after its
# guaranteed first item; the search is seeded, so identical submissions
# cost identical mappings.
submit_batch() {
  "$BIN" jobs submit -addr "$BASE" -token secret-a -priority batch \
    -macros base,macro-a,macro-b,macro-d -networks resnet18 -mappings 200 \
    | sed -n 's/^accepted \(job-[0-9]*\).*/\1/p'
}
submit_interactive() {
  "$BIN" jobs submit -addr "$BASE" -token secret-b -priority interactive \
    -macros base -networks toy -layers 1 -mappings 2 \
    | sed -n 's/^accepted \(job-[0-9]*\).*/\1/p'
}
job_field() { curl -s -H "Authorization: Bearer $1" "$BASE/v1/jobs/$2" | jq -r ".$3"; }

echo "tenant_smoke: measuring the undisturbed runs"
M0=$(mappings)
BATCH1=$(submit_batch); [ -n "$BATCH1" ] || fail "batch submit 1"
"$BIN" jobs wait "$BATCH1" -addr "$BASE" -token secret-a -timeout 300s >/dev/null 2>&1 \
  || fail "undisturbed batch run failed"
M1=$(mappings)
B=$((M1 - M0))
INTER1=$(submit_interactive); [ -n "$INTER1" ] || fail "interactive submit 1"
"$BIN" jobs wait "$INTER1" -addr "$BASE" -token secret-b -timeout 120s >/dev/null 2>&1 \
  || fail "undisturbed interactive run failed"
M2=$(mappings)
I=$((M2 - M1))
[ "$B" -gt 0 ] && [ "$I" -gt 0 ] || fail "mappings_evaluated not moving (B=$B I=$I)"

echo "tenant_smoke: preemption — tenant B's interactive job overtakes tenant A's sweep"
BATCH2=$(submit_batch); [ -n "$BATCH2" ] || fail "batch submit 2"
# Let the sweep bank at least one item (the scheduler guarantees one
# unit of progress before any yield)...
for _ in $(seq 1 600); do
  DONE=$(job_field secret-a "$BATCH2" completed)
  [ "$DONE" -ge 1 ] 2>/dev/null && break
  sleep 0.1
done
[ "$DONE" -ge 1 ] || fail "batch sweep made no progress"
# ...then interrupt it with interactive work from the other tenant.
INTER2=$(submit_interactive); [ -n "$INTER2" ] || fail "interactive submit 2"
"$BIN" jobs wait "$INTER2" -addr "$BASE" -token secret-b -timeout 120s >/dev/null 2>&1 \
  || fail "interactive job did not succeed around the sweep"
# The sweep must still be unfinished — the interactive job was served
# first, not queued behind the batch drain.
BSTATUS=$(job_field secret-a "$BATCH2" status)
[ "$BSTATUS" != succeeded ] || fail "batch sweep drained before the interactive job (no preemption)"
"$BIN" jobs wait "$BATCH2" -addr "$BASE" -token secret-a -timeout 300s >/dev/null 2>&1 \
  || fail "preempted batch sweep did not resume to success"
RESUMES=$(job_field secret-a "$BATCH2" resumes)
[ "$RESUMES" -ge 1 ] 2>/dev/null || fail "batch sweep reports no resumes ($RESUMES)"
M3=$(mappings)
GOT=$((M3 - M2))
WANT=$((B + I))
[ "$GOT" -eq "$WANT" ] \
  || fail "preempted round re-evaluated work: mappings delta $GOT, want exactly $WANT (batch $B + interactive $I)"

echo "tenant_smoke: per-tenant quota — 429 names the tenant, other tenant unaffected"
BATCH3=$(submit_batch); [ -n "$BATCH3" ] || fail "batch submit 3"   # occupies the runner
# The quota counts queued jobs, so make sure the occupier has been
# dispatched before filling the queue behind it.
for _ in $(seq 1 100); do
  [ "$(job_field secret-a "$BATCH3" status)" = running ] && break
  sleep 0.1
done
[ "$(job_field secret-a "$BATCH3" status)" = running ] || fail "batch 3 never started"
BATCH4=$(submit_batch); [ -n "$BATCH4" ] || fail "batch submit 4"   # fills team-a's pending quota
REJ=$(curl -s -H "Authorization: Bearer secret-a" \
  -H "Content-Type: application/json" \
  -d '{"macros":["base"],"networks":["toy"],"max_mappings":2}' "$BASE/v1/jobs")
CODE=$(echo "$REJ" | jq -r .code)
[ "$CODE" = queue_full ] || fail "over-quota submit code was $CODE, not queue_full: $REJ"
TENANT=$(echo "$REJ" | jq -r .details.tenant)
[ "$TENANT" = team-a ] || fail "429 details.tenant was $TENANT: $REJ"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer secret-a" \
  -d '{"macros":["base"],"networks":["toy"],"max_mappings":2}' "$BASE/v1/jobs")
[ "$STATUS" = 429 ] || fail "over-quota submit status was $STATUS"
INTER3=$(submit_interactive); [ -n "$INTER3" ] || fail "team-b blocked by team-a's quota"
curl -sf -X POST -H "Authorization: Bearer secret-a" "$BASE/v1/jobs/$BATCH3/cancel" >/dev/null \
  || fail "cancel batch 3"
curl -sf -X POST -H "Authorization: Bearer secret-a" "$BASE/v1/jobs/$BATCH4/cancel" >/dev/null \
  || fail "cancel batch 4"
"$BIN" jobs wait "$INTER3" -addr "$BASE" -token secret-b -timeout 120s >/dev/null 2>&1 \
  || fail "team-b job did not finish after cleanup"

kill -TERM "$PID" && wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""
echo "tenant_smoke: PASS — 401s typed, interactive preempted the sweep (resumes=$RESUMES, no re-evaluation), quota 429 per-tenant"
