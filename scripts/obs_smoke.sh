#!/usr/bin/env bash
# Observability smoke test: boot `cimloop serve` with a tenant file and
# a debug listener and prove the obs subsystem end to end with the real
# binary:
#   - GET /metrics answers Prometheus text 0.0.4 without credentials
#     and carries the acceptance-critical series after a sweep: cache
#     hit counters, per-tenant WFQ dispatch counters, and the
#     search-phase latency histogram
#   - GET /v1/debug/slow (behind auth) shows per-item sweep spans with
#     non-zero queue/compile/search phase timings
#   - `cimloop obs metrics` and `cimloop obs slow` read both surfaces
#   - net/http/pprof is served on -debug-addr and absent from the
#     public listener
#   - SIGHUP reloads the tenant file: a rotated token takes effect, a
#     broken file is rejected with the previous set kept serving
#
# Run from the repo root:  ./scripts/obs_smoke.sh
# Needs: go, curl, jq.
set -euo pipefail

ADDR="127.0.0.1:18098"
BASE="http://$ADDR"
DEBUG_ADDR="127.0.0.1:16061"
WORK=$(mktemp -d)
BIN="$WORK/cimloop"
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "obs_smoke: FAIL — $*" >&2; exit 1; }

echo "obs_smoke: building cimloop"
go build -o "$BIN" ./cmd/cimloop

cat > "$WORK/tenants.yaml" <<'EOF'
tenants:
  - id: team-a
    token: secret-a
    weight: 2
  - id: team-b
    token: secret-b
EOF

"$BIN" serve -addr "$ADDR" -workers 1 -async-threshold -1 \
  -tenants "$WORK/tenants.yaml" -debug-addr "$DEBUG_ADDR" &
PID=$!
for _ in $(seq 1 100); do
  curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$PID" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
curl -sf "$BASE/healthz" >/dev/null || fail "server never became healthy"

echo "obs_smoke: /metrics is open and speaks Prometheus text"
HDRS=$(curl -si "$BASE/metrics")
echo "$HDRS" | head -1 | grep -q ' 200' || fail "/metrics without token was not 200"
echo "$HDRS" | grep -qi 'content-type: text/plain; version=0.0.4' \
  || fail "/metrics content type is not Prometheus text 0.0.4"

echo "obs_smoke: tenant sweep drives the counters"
"$BIN" jobs submit -addr "$BASE" -token secret-a \
  -macros base,macro-b -networks toy -mappings 4 -wait >/dev/null \
  || fail "sweep job did not succeed"

METRICS=$(curl -sf "$BASE/metrics")
grep -q 'cimloop_cache_hits_total' <<<"$METRICS" \
  || fail "missing cimloop_cache_hits_total"
grep -q 'cimloop_cache_compiles_total' <<<"$METRICS" \
  || fail "missing cimloop_cache_compiles_total"
grep -Eq 'cimloop_wfq_dispatches_total\{tenant="team-a"\} [1-9]' <<<"$METRICS" \
  || fail "missing per-tenant WFQ dispatch counter for team-a"
grep -Eq 'cimloop_request_phase_seconds_count\{phase="search"\} [1-9]' <<<"$METRICS" \
  || fail "missing search-phase latency histogram samples"
grep -q 'cimloop_evaluate_seconds_bucket{le=' <<<"$METRICS" \
  || fail "missing evaluate latency histogram buckets"
grep -Eq 'cimloop_job_queue_wait_seconds_count\{class="batch"\} [1-9]' <<<"$METRICS" \
  || fail "missing job queue-wait histogram samples"

echo "obs_smoke: slow log carries per-item spans with phase timings"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/debug/slow")
[ "$STATUS" = 401 ] || fail "/v1/debug/slow without token was $STATUS, not 401"
SLOW=$(curl -sf -H "Authorization: Bearer secret-a" "$BASE/v1/debug/slow")
echo "$SLOW" | jq -e '[.requests[] | select(.route == "sweep-item")] | length >= 2' >/dev/null \
  || fail "slow log has fewer than 2 sweep-item spans: $SLOW"
for PHASE in queue compile search; do
  echo "$SLOW" | jq -e --arg p "$PHASE" \
    '[.requests[] | select(.route == "sweep-item") | .phases[]?
      | select(.phase == $p and .seconds > 0)] | length >= 1' >/dev/null \
    || fail "no sweep-item span with non-zero $PHASE time: $SLOW"
done
echo "$SLOW" | jq -e '[.requests[] | select(.route == "sweep-item" and .tenant == "team-a")] | length >= 1' >/dev/null \
  || fail "sweep-item spans are not tenant-attributed"

echo "obs_smoke: CLI views"
"$BIN" obs metrics -addr "$BASE" | grep -q 'cimloop_uptime_seconds' \
  || fail "cimloop obs metrics"
"$BIN" obs slow -addr "$BASE" -token secret-a -limit 5 | grep -q 'sweep-item' \
  || fail "cimloop obs slow"

echo "obs_smoke: pprof only on the debug listener"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "http://$DEBUG_ADDR/debug/pprof/")
[ "$STATUS" = 200 ] || fail "debug listener pprof index was $STATUS"
curl -sf "http://$DEBUG_ADDR/metrics" | grep -q 'cimloop_uptime_seconds' \
  || fail "debug listener must serve /metrics"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/debug/pprof/")
[ "$STATUS" != 200 ] || fail "pprof must not be reachable on the public listener"

echo "obs_smoke: SIGHUP tenant rotation"
cat > "$WORK/tenants.yaml" <<'EOF'
tenants:
  - id: team-a
    token: rotated-a
    weight: 2
  - id: team-b
    token: secret-b
EOF
kill -HUP "$PID"
for _ in $(seq 1 50); do
  STATUS=$(curl -s -o /dev/null -w '%{http_code}' \
    -H "Authorization: Bearer secret-a" "$BASE/v1/macros")
  [ "$STATUS" = 401 ] && break
  sleep 0.1
done
[ "$STATUS" = 401 ] || fail "old token still admitted after rotation"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' \
  -H "Authorization: Bearer rotated-a" "$BASE/v1/macros")
[ "$STATUS" = 200 ] || fail "rotated token rejected: $STATUS"

echo "obs_smoke: broken tenant file keeps the previous set"
echo 'tenants:' > "$WORK/tenants.yaml" # valid YAML, empty set: must be refused
kill -HUP "$PID"
for _ in $(seq 1 50); do
  ERRS=$(curl -sf "$BASE/healthz" | jq -r '.obs.tenant_reload_errors // 0')
  [ "$ERRS" -ge 1 ] && break
  sleep 0.1
done
[ "$ERRS" -ge 1 ] || fail "failed reload was not counted (tenant_reload_errors=$ERRS)"
STATUS=$(curl -s -o /dev/null -w '%{http_code}' \
  -H "Authorization: Bearer rotated-a" "$BASE/v1/macros")
[ "$STATUS" = 200 ] || fail "previous tenant set lost after a broken reload"
grep -q 'cimloop_tenant_reloads_total{result="ok"} 1' <<<"$(curl -sf "$BASE/metrics")" \
  || fail "reload counter missing from /metrics"

echo "obs_smoke: PASS"
