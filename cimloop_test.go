package cimloop

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeMacroFlow(t *testing.T) {
	arch, err := Macro("macro-c")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NetworkByName("toy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.EvaluateNetwork(net, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 || res.TOPSPerW() <= 0 || res.GOPS() <= 0 {
		t.Fatalf("invalid results: %+v", res)
	}
}

func TestFacadeMacroConstructors(t *testing.T) {
	builders := []func(MacroConfig) (*Arch, error){MacroBase, MacroA, MacroB, MacroC, MacroD}
	for i, f := range builders {
		a, err := f(MacroConfig{})
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		if a.Name == "" {
			t.Fatalf("builder %d: empty name", i)
		}
	}
	if _, err := Macro("unknown"); err == nil {
		t.Fatal("want error for unknown macro")
	}
}

func TestFacadeSystemScenarios(t *testing.T) {
	macro, err := MacroD(MacroConfig{Rows: 32, Cols: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []Scenario{AllDRAM, WeightStationary, OnChipIO} {
		sys, err := BuildSystem(macro, sc, SystemConfig{Macros: 2})
		if err != nil {
			t.Fatalf("%v: %v", sc, err)
		}
		if !strings.Contains(sys.Name, "system") {
			t.Fatalf("system name %q", sys.Name)
		}
	}
}

func TestFacadeParseSpec(t *testing.T) {
	spec := `
name: tiny
node_nm: 45
hierarchy:
  - component: buffer
    class: sram-buffer
    temporal_reuse: [Inputs, Weights, Outputs]
  - container: columns
    mesh_x: 8
    spatial_reuse: [Inputs]
    children:
      - component: adc
        class: adc
        no_coalesce: [Outputs]
      - container: rows
        mesh_y: 8
        spatial_reuse: [Outputs]
        children:
          - component: cell
            class: sram-cell
            compute: true
            temporal_reuse: [Weights]
`
	arch, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(arch)
	if err != nil {
		t.Fatal(err)
	}
	net, err := MaxUtilization(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := eng.EvaluateLayer(net.Layers[0], 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy <= 0 || math.IsNaN(r.Energy) {
		t.Fatalf("energy %g", r.Energy)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) < 16 {
		t.Fatalf("expected >=16 experiments, got %d", len(names))
	}
	tables, err := RunExperiment("table3", ExperimentOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("table3 wrong shape: %+v", tables)
	}
}

func TestFacadeBatchServer(t *testing.T) {
	srv := NewServer(BatchOptions{Workers: 4, MaxMappings: 2})
	reqs := SweepGrid([]string{"base", "macro-b"}, []string{"toy"}, nil, 0, 2)
	results, err := srv.Sweep(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("%s: %s", r.Tag, r.Err)
		}
		if r.EnergyJ <= 0 || r.TOPSPerW <= 0 {
			t.Fatalf("%s: bad metrics %+v", r.Tag, r)
		}
	}
	table := SweepResultsTable(results)
	if !strings.Contains(table.String(), "toy") {
		t.Fatalf("table:\n%s", table.String())
	}
	// A second identical sweep must be served from cache.
	if _, err := srv.Sweep(reqs); err != nil {
		t.Fatal(err)
	}
	st := srv.CacheStats()
	if st.Hits == 0 || st.HitRate() <= 0 {
		t.Fatalf("warm sweep did not hit the cache: %+v", st)
	}
	// The facade wires the experiment runner into the service.
	if srv.ExperimentNames == nil || srv.RunExperiment == nil {
		t.Fatal("experiment hooks not wired")
	}
	names := srv.ExperimentNames()
	if len(names) == 0 {
		t.Fatal("no experiments listed")
	}
	tables, err := srv.RunExperiment("table3", true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables from experiment run")
	}
}
