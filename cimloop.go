// Package cimloop is a from-scratch Go implementation of CiMLoop
// (Andrulis, Emer, Sze — ISPASS 2024): a flexible, accurate, and fast
// Compute-In-Memory (CiM) modeling tool.
//
// CiMLoop models full CiM systems — devices, circuits, architecture,
// workload, and mapping together — with three key pieces:
//
//   - A flexible container-hierarchy specification describing circuits and
//     architecture in one representation with per-component data
//     movement/reuse directives (packages spec and specfile).
//   - An accurate data-value-dependent energy model that captures the
//     interaction between operand value distributions, data encodings/bit
//     slicing, and circuit energy (packages dist, enc, circuits, core).
//   - A fast statistical model that computes average energy per action
//     once per layer and amortizes it over thousands of mappings
//     (package core), validated against a value-level simulator
//     (package valuesim).
//
// This package is the public facade: construct published macro models or
// parse your own textual spec, compile an Engine, and evaluate workloads.
//
//	arch, _ := cimloop.Macro("macro-b")
//	eng, _ := cimloop.NewEngine(arch)
//	net, _ := cimloop.NetworkByName("resnet18")
//	res, _ := eng.EvaluateNetwork(net, 100, 0)
//	fmt.Println(res.TOPSPerW())
package cimloop

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/specfile"
	"repro/internal/system"
	"repro/internal/workload"
)

// Core modeling types.
type (
	// Arch is a compiled-ready CiM architecture: flattened hierarchy,
	// technology context, data representation, and mapper guidance.
	Arch = core.Arch
	// Engine evaluates layers and mappings on an Arch.
	Engine = core.Engine
	// Result is one layer evaluation (energy, breakdown, throughput).
	Result = core.Result
	// NetworkResult aggregates per-layer results over a network.
	NetworkResult = core.NetworkResult
	// LayerContext is the per-layer amortized state (PMFs and per-action
	// energies).
	LayerContext = core.LayerContext
)

// Workload types.
type (
	// Network is a DNN workload: a sequence of layers with operand
	// statistics.
	Network = workload.Network
	// Layer is one tensor operation plus operand statistics.
	Layer = workload.Layer
)

// MacroConfig parameterizes the published macro models (Table III).
type MacroConfig = macros.Config

// SystemConfig parameterizes full-system composition (Fig. 15).
type SystemConfig = system.Config

// Scenario selects the full-system data placement (Fig. 15).
type Scenario = system.Scenario

// Full-system data placement scenarios.
const (
	AllDRAM          = system.AllDRAM
	WeightStationary = system.WeightStationary
	OnChipIO         = system.OnChipIO
)

// Table is a rendered experiment result.
type Table = report.Table

// ExperimentOptions tunes experiment reproduction runs.
type ExperimentOptions = experiments.Options

// NewEngine validates and compiles an architecture.
func NewEngine(a *Arch) (*Engine, error) { return core.NewEngine(a) }

// Macro constructs a published macro model by name: "base", "macro-a",
// "macro-b", "macro-c", "macro-d", or "digital-cim".
func Macro(name string) (*Arch, error) { return macros.ByName(name) }

// MacroBase builds the Base (NeuroSim-style) macro with overrides.
func MacroBase(cfg MacroConfig) (*Arch, error) { return macros.Base(cfg) }

// MacroA builds Macro A (Jia et al., 65 nm SRAM) with overrides.
func MacroA(cfg MacroConfig) (*Arch, error) { return macros.A(cfg) }

// MacroB builds Macro B (Sinangil et al., 7 nm SRAM) with overrides.
func MacroB(cfg MacroConfig) (*Arch, error) { return macros.B(cfg) }

// MacroC builds Macro C (Wan et al., 130 nm ReRAM) with overrides.
func MacroC(cfg MacroConfig) (*Arch, error) { return macros.C(cfg) }

// MacroD builds Macro D (Wang et al., 22 nm SRAM C-2C) with overrides.
func MacroD(cfg MacroConfig) (*Arch, error) { return macros.D(cfg) }

// NetworkByName returns a model-zoo workload: "resnet18", "vit-base",
// "mobilenetv3-large", "gpt2", or "toy".
func NetworkByName(name string) (*Network, error) { return workload.ByName(name) }

// MaxUtilization returns a matrix-vector workload exactly matching a
// rows x cols array.
func MaxUtilization(rows, cols, vectors int) (*Network, error) {
	return workload.MaxUtilization(rows, cols, vectors)
}

// ParseSpec decodes a textual container-hierarchy specification into an
// architecture (see internal/specfile for the format).
func ParseSpec(text string) (*Arch, error) { return specfile.Parse(text) }

// BuildSystem wraps a macro into a full system (DRAM + global buffer +
// router + parallel macros) for the given scenario.
func BuildSystem(macro *Arch, sc Scenario, cfg SystemConfig) (*Arch, error) {
	return system.Build(macro, sc, cfg)
}

// Experiments lists the reproducible paper tables and figures.
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(name string, o ExperimentOptions) ([]*Table, error) {
	return experiments.Run(name, o)
}
