// Package cimloop is a from-scratch Go implementation of CiMLoop
// (Andrulis, Emer, Sze — ISPASS 2024): a flexible, accurate, and fast
// Compute-In-Memory (CiM) modeling tool.
//
// CiMLoop models full CiM systems — devices, circuits, architecture,
// workload, and mapping together — with three key pieces:
//
//   - A flexible container-hierarchy specification describing circuits and
//     architecture in one representation with per-component data
//     movement/reuse directives (packages spec and specfile).
//   - An accurate data-value-dependent energy model that captures the
//     interaction between operand value distributions, data encodings/bit
//     slicing, and circuit energy (packages dist, enc, circuits, core).
//   - A fast statistical model that computes average energy per action
//     once per layer and amortizes it over thousands of mappings
//     (package core), validated against a value-level simulator
//     (package valuesim).
//
// This package is the public facade: construct published macro models or
// parse your own textual spec, compile an Engine, and evaluate workloads.
//
//	arch, _ := cimloop.Macro("macro-b")
//	eng, _ := cimloop.NewEngine(arch)
//	net, _ := cimloop.NetworkByName("resnet18")
//	res, _ := eng.EvaluateNetwork(net, 100, 0)
//	fmt.Println(res.TOPSPerW())
//
// # Batch evaluation and serving
//
// For many evaluations — sweeping macros, networks, and full-system
// scenarios — use the batch service instead of compiling engines per
// call. A Server owns a bounded worker pool and a content-addressed LRU
// cache keyed by (architecture, layer, encoding): engines and per-layer
// amortized contexts compile once and are shared across requests, so a
// warm sweep pays only the per-mapping count analysis.
//
//	srv := cimloop.NewServer(cimloop.BatchOptions{Workers: 8})
//	reqs := cimloop.SweepGrid(
//	    []string{"macro-a", "macro-b", "macro-d"},
//	    []string{"resnet18", "vit-base"},
//	    nil,  // no system wrap; pass scenario names for Fig. 15 systems
//	    0, 0) // default layer count and mapping budget
//	results, _ := srv.Sweep(reqs)
//	fmt.Println(cimloop.SweepResultsTable(results).String())
//	fmt.Printf("cache: %+v\n", srv.CacheStats())
//
// The same service speaks JSON over HTTP:
//
//	cimloop serve -addr :8080 -workers 8
//
// exposes GET /healthz (liveness + cache counters + job occupancy), POST
// /v1/evaluate (one request), POST /v1/sweep (a request list or a macro
// x network x scenario grid), GET /v1/macros, GET /v1/networks, and
// GET+POST /v1/experiments (list and run paper reproductions). For
// example:
//
//	curl -s localhost:8080/v1/evaluate -d \
//	    '{"macro": "macro-b", "network": "resnet18", "max_mappings": 20}'
//	curl -s localhost:8080/v1/sweep -d \
//	    '{"macros": ["macro-a", "macro-b"], "networks": ["resnet18"]}'
//
// # Async jobs, cancellation, and backpressure
//
// Grid-sized sweeps do not hold the connection open: a sweep at or
// beyond the server's async threshold (or submitted with "async": true,
// or POSTed to /v1/jobs) returns 202 Accepted with a job whose progress
// streams from the worker pool's completion path:
//
//	curl -s localhost:8080/v1/jobs -d \
//	    '{"macros": ["base", "macro-a", "macro-b"], "networks": ["resnet18", "vit-base"]}'
//	curl -s localhost:8080/v1/jobs/job-000001          # completed/total, partial results
//	curl -s -X POST localhost:8080/v1/jobs/job-000001/cancel
//
// Cancellation is plumbed through the evaluation pipeline — a cancelled
// job (or a dropped synchronous connection) stops dispatching grid items
// and aborts in-flight per-layer mapping searches via context. When the
// bounded job queue is full the service answers 429 with a Retry-After
// header instead of queueing unboundedly. The same flow drives
// programmatic use: Server.SubmitSweep, Server.Job, Server.CancelJob,
// Server.WaitJob, and Server.SweepCtx for a context-aware synchronous
// sweep. The `cimloop jobs` subcommand (submit/list/status/wait/cancel)
// is the CLI client for these endpoints.
//
// The experiment runner itself routes its grid sweeps (Fig. 2, Fig.
// 13-16) through the same executor, so reproductions get the parallel
// speedup and cache reuse for free.
//
// # Typed v1 contract, Go SDK, priorities, and server-push progress
//
// The entire wire contract — request/response types for every endpoint,
// a structured error envelope with stable machine-readable codes
// (invalid_request, not_found, queue_full, deadline_exceeded,
// shutting_down, ...), and the SSE event format — lives in
// internal/serve/api and is documented endpoint-by-endpoint in
// docs/API.md. Unknown routes, wrong methods, oversized bodies
// (bounded by BatchOptions.MaxBodyBytes), and recovered panics all
// answer that envelope as JSON, never net/http plain text. NewClient
// returns the Go SDK (package internal/client): context-aware typed
// methods, automatic retry honoring Retry-After on backpressure, and
// WaitJob streaming job progress over Server-Sent Events
// (GET /v1/jobs/{id}/events, Last-Event-ID resume) with long-poll and
// plain-poll fallbacks — the `cimloop jobs` subcommands are a thin
// shell over it. Job submissions carry a scheduling class
// ("priority": interactive|batch): the pending queue dispatches
// interactive jobs ahead of batch sweeps (FIFO within a class, bounded
// anti-starvation, class persisted in the write-ahead log so replays
// keep it), and GET /v1/jobs pages with ?status/?limit/?cursor.
//
// # Durable warm starts
//
// The cache's amortized state — compiled engines and per-layer contexts
// (plain-data PMFs and energy tables) — and the job store's records can
// outlive the process. With BatchOptions.CacheDir set (or `cimloop serve
// -cache-dir`), cache fills stream to a versioned, checksummed,
// fingerprint-addressed on-disk store (package internal/persist) through
// a write-behind queue, and a restarted server scans the directory on
// boot: its first repeated request is a cache hit, with nothing
// recompiled (warm-from-disk ≈ 20x over a cold boot on the benchmark
// grid; CI gates the ratio at 5x). With JobsDir set (`-jobs-dir`),
// terminal jobs survive restarts — /v1/jobs/{id} still answers for work
// finished before the restart — and accepted-but-unfinished sweeps are
// write-ahead-logged and replayed under their original IDs. Corrupt or
// version-mismatched files are skipped and reclaimed, never fatal, and
// restored entries are re-verified against their content fingerprints.
// Eviction is cost-aware (GDSF): entries are weighted by frequency x
// measured compile time — persisted and restored with each record — so
// an expensive engine outlives cheap churn. Sweeps also accept a
// "timeout_sec" deadline (SweepJobOptions.Timeout programmatically)
// enforced through the same context plumbing as cancellation. With no
// directories configured nothing touches disk and behavior is unchanged.
//
// # Intra-request parallel mapping search
//
// Within one request, each layer's candidate mappings can be costed in
// parallel: SearchWorkers (a BatchOptions default, a per-request
// "search_workers" field, Engine.EvaluateNetworkOptsCtx's SearchOptions,
// or the CLI's -search-workers flag) fans evaluations across a bounded
// goroutine pool. The parallel search preserves the serial path's exact
// semantics — the winner is the minimum-cost candidate with ties broken
// by lowest candidate index, the first evaluation error is reported in
// candidate order, and cancellation is checked before every candidate —
// so results are bit-identical at any width; only latency changes. Inside
// a Server the fan-out draws on a concurrency budget shared with the
// request-level worker pool (capacity max(Workers, SearchWorkers),
// reported under /healthz as "search"): a saturated pool degrades
// searches to serial rather than oversubscribing the machine, and a lone
// request gets the whole budget.
package cimloop

import (
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/serve/api"
	"repro/internal/serve/jobs"
	"repro/internal/specfile"
	"repro/internal/sweepdef"
	"repro/internal/system"
	"repro/internal/workload"
)

// Core modeling types.
type (
	// Arch is a compiled-ready CiM architecture: flattened hierarchy,
	// technology context, data representation, and mapper guidance.
	Arch = core.Arch
	// Engine evaluates layers and mappings on an Arch.
	Engine = core.Engine
	// Result is one layer evaluation (energy, breakdown, throughput).
	Result = core.Result
	// NetworkResult aggregates per-layer results over a network.
	NetworkResult = core.NetworkResult
	// LayerContext is the per-layer amortized state (PMFs and per-action
	// energies).
	LayerContext = core.LayerContext
	// SearchOptions bundles the per-layer mapping-search knobs (budget,
	// seed, and SearchWorkers for intra-layer parallel search).
	SearchOptions = core.SearchOptions
)

// Workload types.
type (
	// Network is a DNN workload: a sequence of layers with operand
	// statistics.
	Network = workload.Network
	// Layer is one tensor operation plus operand statistics.
	Layer = workload.Layer
)

// MacroConfig parameterizes the published macro models (Table III).
type MacroConfig = macros.Config

// SystemConfig parameterizes full-system composition (Fig. 15).
type SystemConfig = system.Config

// Scenario selects the full-system data placement (Fig. 15).
type Scenario = system.Scenario

// Full-system data placement scenarios.
const (
	AllDRAM          = system.AllDRAM
	WeightStationary = system.WeightStationary
	OnChipIO         = system.OnChipIO
)

// Table is a rendered experiment result.
type Table = report.Table

// ExperimentOptions tunes experiment reproduction runs.
type ExperimentOptions = experiments.Options

// NewEngine validates and compiles an architecture.
func NewEngine(a *Arch) (*Engine, error) { return core.NewEngine(a) }

// Macro constructs a published macro model by name: "base", "macro-a",
// "macro-b", "macro-c", "macro-d", or "digital-cim".
func Macro(name string) (*Arch, error) { return macros.ByName(name) }

// MacroBase builds the Base (NeuroSim-style) macro with overrides.
func MacroBase(cfg MacroConfig) (*Arch, error) { return macros.Base(cfg) }

// MacroA builds Macro A (Jia et al., 65 nm SRAM) with overrides.
func MacroA(cfg MacroConfig) (*Arch, error) { return macros.A(cfg) }

// MacroB builds Macro B (Sinangil et al., 7 nm SRAM) with overrides.
func MacroB(cfg MacroConfig) (*Arch, error) { return macros.B(cfg) }

// MacroC builds Macro C (Wan et al., 130 nm ReRAM) with overrides.
func MacroC(cfg MacroConfig) (*Arch, error) { return macros.C(cfg) }

// MacroD builds Macro D (Wang et al., 22 nm SRAM C-2C) with overrides.
func MacroD(cfg MacroConfig) (*Arch, error) { return macros.D(cfg) }

// NetworkByName returns a model-zoo workload: "resnet18", "vit-base",
// "mobilenetv3-large", "gpt2", or "toy".
func NetworkByName(name string) (*Network, error) { return workload.ByName(name) }

// MaxUtilization returns a matrix-vector workload exactly matching a
// rows x cols array.
func MaxUtilization(rows, cols, vectors int) (*Network, error) {
	return workload.MaxUtilization(rows, cols, vectors)
}

// ParseSpec decodes a textual container-hierarchy specification into an
// architecture (see internal/specfile for the format).
func ParseSpec(text string) (*Arch, error) { return specfile.Parse(text) }

// BuildSystem wraps a macro into a full system (DRAM + global buffer +
// router + parallel macros) for the given scenario.
func BuildSystem(macro *Arch, sc Scenario, cfg SystemConfig) (*Arch, error) {
	return system.Build(macro, sc, cfg)
}

// Batch-evaluation service types (package serve).
type (
	// Server is the concurrent batch-evaluation service: a worker pool
	// plus a content-addressed cache of engines and layer contexts that
	// outlives individual calls.
	Server = serve.Server
	// BatchOptions tunes the service (workers, mapping budget, cache
	// bound). The zero value is usable.
	BatchOptions = serve.BatchOptions
	// EvalRequest describes one batch evaluation: an architecture source
	// (macro name, spec text, or prebuilt Arch), an optional full-system
	// scenario, and a workload.
	EvalRequest = serve.Request
	// EvalResult is one completed batch evaluation.
	EvalResult = serve.Result
	// CacheStats snapshots the service cache's hit/miss/eviction counters.
	CacheStats = serve.Stats
	// SweepJobOptions tunes one async sweep job (workers, deadline,
	// priority, tenant).
	SweepJobOptions = serve.SweepJobOptions
	// Tenants is a parsed multi-tenant configuration: bearer tokens,
	// weighted-fair-queuing weights, and per-tenant quotas. Set it on
	// BatchOptions.Tenants to require authentication.
	Tenants = serve.Tenants
	// TenantConfig is one tenant's entry in a Tenants configuration.
	TenantConfig = serve.TenantConfig
	// SweepDefs is a validated set of declarative sweep definitions
	// (sweeps/*.yaml; see docs/EXPERIMENTS.md). Set it on
	// BatchOptions.SweepDefs — or use Server.ReloadSweepDefsDir — to
	// serve the definitions at POST /v1/experiments/{name}.
	SweepDefs = sweepdef.Set
	// SweepDef is one parsed definition: axes, budgets, and typed
	// parameters, compiled into an EvalRequest grid by Compile.
	SweepDef = sweepdef.Definition
	// PersistStats snapshots the durable warm-start layer (warm-scan
	// counts plus write-behind counters; zero-valued when disabled).
	PersistStats = serve.PersistStats
	// WarmStats summarizes one boot's warm-start scan.
	WarmStats = serve.WarmStats
	// JobSnapshot is a point-in-time copy of one async job: status,
	// completed/total progress, partial results, and first error.
	JobSnapshot = jobs.Snapshot
	// JobStatus is an async job's lifecycle state.
	JobStatus = jobs.Status
	// JobStats counts retained jobs by lifecycle stage.
	JobStats = jobs.Stats
	// JobPriority is an async job's scheduling class: interactive jobs
	// dispatch before batch jobs, FIFO within a class.
	JobPriority = jobs.Priority
)

// Typed v1 wire contract and Go SDK (packages internal/serve/api and
// internal/client; see docs/API.md).
type (
	// APIError is the structured v1 error envelope: a stable machine-
	// readable Code, a human-readable Message, and the backoff hint on
	// backpressure. The client SDK returns these as Go errors.
	APIError = api.Error
	// APIErrorCode enumerates the stable error codes.
	APIErrorCode = api.ErrorCode
	// SweepRequest is the body of POST /v1/sweep and /v1/jobs: an
	// explicit request list or a grid, plus async/timeout/priority knobs.
	SweepRequest = api.SweepRequest
	// JobEvent is one Server-Sent progress/terminal event on the job
	// stream.
	JobEvent = api.JobEvent
	// Client is the Go SDK for a remote serve instance: typed methods,
	// retry/backoff honoring Retry-After, and SSE job streaming with
	// polling fallback.
	Client = client.Client
	// WaitOptions tunes Client.WaitJob (event/transport callbacks,
	// polling fallback).
	WaitOptions = client.WaitOptions
)

// NewClient returns the Go SDK client for the serve instance at addr
// ("host:port" or a full URL).
func NewClient(addr string, opts ...client.Option) *Client { return client.New(addr, opts...) }

// Async job scheduling classes.
const (
	JobInteractive = jobs.PriorityInteractive
	JobBatch       = jobs.PriorityBatch
)

// Async job lifecycle states.
const (
	JobQueued    = jobs.StatusQueued
	JobRunning   = jobs.StatusRunning
	JobSucceeded = jobs.StatusSucceeded
	JobFailed    = jobs.StatusFailed
	JobCancelled = jobs.StatusCancelled
)

// ErrJobQueueFull is returned by Server.SubmitSweep when the bounded
// pending-job queue is saturated; retry after Server.RetryAfter.
var ErrJobQueueFull = jobs.ErrQueueFull

// NewServer constructs the batch-evaluation service with the experiment
// runner wired in, so its HTTP API can also list and regenerate paper
// artifacts.
func NewServer(opts BatchOptions) *Server {
	s := serve.NewServer(opts)
	s.ExperimentNames = experiments.Names
	s.RunExperiment = func(name string, fast bool, maxMappings int, seed int64) ([]*report.Table, error) {
		return experiments.Run(name, experiments.Options{Fast: fast, MaxMappings: maxMappings, Seed: seed})
	}
	return s
}

// SweepGrid builds the cross product of macros x networks x scenarios as
// a batch of evaluation requests.
func SweepGrid(macroNames, networks, scenarios []string, layers, maxMappings int) []EvalRequest {
	return serve.Grid(macroNames, networks, scenarios, layers, maxMappings)
}

// SweepResultsTable renders sweep results as a report table.
func SweepResultsTable(results []*EvalResult) *Table { return serve.SweepTable(results) }

// LoadTenantsFile reads a tenant file (see docs/TENANCY.md) for
// BatchOptions.Tenants.
func LoadTenantsFile(path string) (*Tenants, error) { return serve.LoadTenantsFile(path) }

// LoadSweepDefs reads and validates a directory of declarative sweep
// definitions (see docs/EXPERIMENTS.md) for BatchOptions.SweepDefs. Any
// broken file fails the whole load.
func LoadSweepDefs(dir string) (*SweepDefs, error) { return sweepdef.LoadDir(dir) }

// Experiments lists the reproducible paper tables and figures.
func Experiments() []string { return experiments.Names() }

// RunExperiment regenerates one paper table or figure.
func RunExperiment(name string, o ExperimentOptions) ([]*Table, error) {
	return experiments.Run(name, o)
}
